// Failure-matrix tests: scripted network faults (sim::FaultPlan) at every
// stage of the migration protocol, asserting the exact terminal state on
// both sides — which side keeps a runnable enclave, which error each half
// reports, and that everything terminates in bounded *virtual* time (no
// wall-clock sleeps anywhere).
//
// Engine-level cases drive LiveMigrationEngine directly over a plain VM;
// the matrix cases run the full stack (guest OS + enclaves + session) and
// probe the survivor with real ecalls.
#include <gtest/gtest.h>

#include "migration/session.h"
#include "sim/fault.h"
#include "util/serde.h"

namespace mig {
namespace {

// Wire tags of the migration protocol (mirrors live_migration.cc).
constexpr uint8_t kTagRound = 1;
constexpr uint8_t kTagStop = 3;
constexpr uint8_t kTagResumeAck = 4;

// All protocol frames are exactly 17 bytes: u8 tag + 2x u64.
bool frame_has_tag(const Bytes& m, uint8_t tag) {
  return m.size() == 17 && m[0] == tag;
}

// kRound frames carrying enclave checkpoints have a nonzero `extra` field
// (the second u64, bytes 9..16).
bool is_checkpoint_round(const Bytes& m) {
  if (!frame_has_tag(m, kTagRound)) return false;
  for (size_t i = 9; i < 17; ++i)
    if (m[i] != 0) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Engine-level: plain VM, no enclaves. Small guest so rounds stay short.

struct EngineRun {
  Result<hv::MigrationReport> source = Error(ErrorCode::kInternal, "unset");
  Result<hv::MigrationReport> target = Error(ErrorCode::kInternal, "unset");
  uint64_t source_end_ns = 0;
  uint64_t target_end_ns = 0;
};

EngineRun run_engine(const std::function<void(sim::Channel&)>& inject) {
  hv::World world(4);
  world.add_machine("src");
  world.add_machine("dst");
  auto channel = world.make_channel();
  if (inject) inject(*channel);
  hv::VmConfig cfg;
  cfg.memory_mb = 64;  // round 0 is ~29 MB => ~0.9 s of virtual wire time
  hv::LiveMigrationEngine engine(world.cost(), hv::MigrationParams{});
  EngineRun out;
  world.executor().spawn("src", [&](sim::ThreadCtx& c) {
    hv::Vm vm(cfg, hv::DirtyModel{});
    out.source = engine.migrate_source(c, vm, channel->a());
    out.source_end_ns = c.now();
  });
  world.executor().spawn("dst", [&](sim::ThreadCtx& c) {
    hv::Vm vm(cfg, hv::DirtyModel{});
    out.target = engine.migrate_target(c, vm, channel->b());
    out.target_end_ns = c.now();
  });
  EXPECT_TRUE(world.executor().run());
  return out;
}

TEST(FaultEngine, SeverMidPrecopyTerminatesBothSidesInBoundedTime) {
  sim::FaultPlan plan;
  plan.sever_at_message(2);  // round 0 lands; round 1 kills the link
  EngineRun r = run_engine([&](sim::Channel& ch) { plan.install(ch.a_to_b()); });

  EXPECT_EQ(r.source.status().code(), ErrorCode::kDeadlineExceeded)
      << r.source.status().to_string();
  EXPECT_EQ(r.target.status().code(), ErrorCode::kDeadlineExceeded)
      << r.target.status().to_string();
  // Source gives up after its bounded retries; target after its quiet-link
  // timeout. Neither waits on the other (the severed link never heals).
  hv::MigrationParams p;
  EXPECT_LT(r.source_end_ns, p.target_recv_timeout_ns);
  EXPECT_LT(r.target_end_ns, 2 * p.target_recv_timeout_ns);
  EXPECT_GE(plan.faults_fired(), 1u);
}

TEST(FaultEngine, SeverAtStopTerminatesBothSides) {
  sim::FaultPlan plan;
  plan.sever_when([](const Bytes& m) { return frame_has_tag(m, kTagStop); });
  EngineRun r = run_engine([&](sim::Channel& ch) { plan.install(ch.a_to_b()); });
  EXPECT_EQ(r.source.status().code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(r.target.status().code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(plan.faults_fired(), 1u);  // the kStop frame itself
}

TEST(FaultEngine, DroppedRoundIsRepairedByRetransmission) {
  EngineRun clean = run_engine(nullptr);
  ASSERT_TRUE(clean.source.ok());

  sim::FaultPlan plan;
  plan.drop_message(2);  // round 1 vanishes once
  EngineRun r = run_engine([&](sim::Channel& ch) { plan.install(ch.a_to_b()); });
  ASSERT_TRUE(r.source.ok()) << r.source.status().to_string();
  ASSERT_TRUE(r.target.ok()) << r.target.status().to_string();
  EXPECT_TRUE(r.source->success);
  // The lost round was re-sent in full: strictly more bytes than a clean run.
  EXPECT_GT(r.source->transferred_bytes, clean.source->transferred_bytes);
  EXPECT_EQ(plan.faults_fired(), 1u);
}

TEST(FaultEngine, DroppedAckIsRepairedByRetransmission) {
  sim::FaultPlan plan;
  plan.drop_message(2);  // ack of round 1 vanishes; the round is re-sent
  EngineRun r = run_engine([&](sim::Channel& ch) { plan.install(ch.b_to_a()); });
  ASSERT_TRUE(r.source.ok()) << r.source.status().to_string();
  ASSERT_TRUE(r.target.ok()) << r.target.status().to_string();
  EXPECT_TRUE(r.source->success);
}

TEST(FaultEngine, DelayedAckDuplicateDoesNotDesyncTheProtocol) {
  // The ack of round 1 arrives *after* the retry deadline: the source
  // retransmits, the target acks again, and the stale duplicate must be
  // drained — not mistaken for a resume ack later.
  sim::FaultPlan plan;
  plan.delay_message(2, 3'000'000'000);  // 3 s > the ~1.4 s ack deadline
  EngineRun r = run_engine([&](sim::Channel& ch) { plan.install(ch.b_to_a()); });
  ASSERT_TRUE(r.source.ok()) << r.source.status().to_string();
  ASSERT_TRUE(r.target.ok()) << r.target.status().to_string();
  EXPECT_TRUE(r.source->success);
  EXPECT_EQ(plan.faults_fired(), 1u);
}

TEST(FaultEngine, CorruptedFrameIsRejectedAsInvalidArgument) {
  sim::FaultPlan plan;
  plan.corrupt_message(1);  // flips a bit in round 0's descriptor
  EngineRun r = run_engine([&](sim::Channel& ch) { plan.install(ch.a_to_b()); });
  // Target refuses the frame outright; its abort notice fails the source.
  EXPECT_EQ(r.target.status().code(), ErrorCode::kInvalidArgument)
      << r.target.status().to_string();
  EXPECT_EQ(r.source.status().code(), ErrorCode::kAborted)
      << r.source.status().to_string();
}

TEST(FaultEngine, MalformedRawFramesAreRejectedNotInterpreted) {
  // Regression: a truncated or oversized frame from the untrusted link must
  // yield kInvalidArgument, never be parsed as a protocol message.
  for (const Bytes& junk :
       {Bytes{0x01, 0x02, 0x03},        // truncated
        Bytes(18, 0x01),                // trailing garbage
        Bytes(17, 0x00),                // in-range length, tag 0 out of range
        Bytes{}}) {                     // empty
    hv::World world(4);
    world.add_machine("src");
    world.add_machine("dst");
    auto channel = world.make_channel();
    hv::LiveMigrationEngine engine(world.cost(), hv::MigrationParams{});
    Result<hv::MigrationReport> target = Error(ErrorCode::kInternal, "unset");
    world.executor().spawn("dst", [&](sim::ThreadCtx& c) {
      hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
      target = engine.migrate_target(c, vm, channel->b());
    });
    Bytes reply;
    world.executor().spawn("attacker", [&](sim::ThreadCtx& c) {
      channel->a().send(c, junk);
      reply = channel->a().recv(c);  // the best-effort abort notice
    });
    ASSERT_TRUE(world.executor().run());
    EXPECT_EQ(target.status().code(), ErrorCode::kInvalidArgument)
        << "junk size " << junk.size() << ": " << target.status().to_string();
    ASSERT_EQ(reply.size(), 17u);
    EXPECT_EQ(reply[0], 6);  // kAbort
  }
}

// ---------------------------------------------------------------------------
// Full-stack failure matrix: guest OS + enclave + VmMigrationSession, one
// scripted fault per protocol stage, exact terminal state asserted via real
// ecalls against whichever side is supposed to survive.

constexpr uint64_t kEcallAdd = 1;
constexpr uint64_t kEcallGet = 3;

std::shared_ptr<sdk::EnclaveProgram> make_counter_program() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("fault-counter");
  prog->add_ecall(kEcallAdd, "add", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t delta = r.u64();
    env.work(200);
    env.write_u64(env.layout().data_off,
                  env.read_u64(env.layout().data_off) + delta);
    return OkStatus();
  });
  prog->add_ecall(kEcallGet, "get", [](sdk::EnclaveEnv& env, sdk::Frame&) {
    Writer w;
    w.u64(env.read_u64(env.layout().data_off));
    env.set_retval(w.take());
    return OkStatus();
  });
  return prog;
}

// Which link the scripted fault attacks. The migration link is the first
// channel the session opens; the key-handshake channel (source control
// thread <-> target control thread) is the second.
enum class Via { kMigrationLink, kHandshake };
enum class Kind { kSever, kDrop, kCorrupt };
// Expected owner of the one runnable enclave afterwards.
enum class Survivor { kSource, kTarget, kNeither };

struct MatrixCase {
  const char* name;
  const char* stage;  // protocol stage being failed, for documentation
  Via via;
  bool a_to_b;       // direction of the attacked pipe
  Kind kind;
  uint8_t tag;       // migration link: first frame with this tag (0 = first
                     // message of the pipe, whatever it is)
  bool checkpoint_round;  // narrow kRound match to checkpoint-carrying rounds
  bool expect_run_ok;
  ErrorCode run_code;  // when !expect_run_ok
  Survivor survivor;
};

class FaultMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(FaultMatrix, TerminalStateIsExact) {
  const MatrixCase& mc = GetParam();

  hv::World world(4);
  hv::Machine& source = world.add_machine("source");
  hv::Machine& target = world.add_machine("target");
  hv::VmConfig cfg;
  cfg.memory_mb = 256;
  hv::Vm vm(cfg, hv::DirtyModel{});
  guestos::GuestOs guest(source, vm);
  crypto::Drbg rng(to_bytes("fault-bed"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair dev_signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("owner")));

  guestos::Process& proc = guest.create_process("app");
  sdk::BuildInput in;
  in.program = make_counter_program();
  in.layout.num_workers = 2;
  sdk::BuildOutput built =
      sdk::build_enclave_image(in, dev_signer, world.ias().service_pk(), rng);
  owner.enroll(built.image.measure(), built.owner);
  sdk::EnclaveHost host(guest, proc, std::move(built), world.ias(),
                        rng.fork(to_bytes("host")));

  // Build the fault plan once; install it on the right pipe of the right
  // channel as the session opens its links.
  sim::FaultPlan plan;
  auto matches = [mc](const Bytes& m) {
    if (mc.tag == 0) return true;  // first message, any content
    if (mc.checkpoint_round) return is_checkpoint_round(m);
    return frame_has_tag(m, mc.tag);
  };
  switch (mc.kind) {
    case Kind::kSever:
      plan.sever_when(matches);
      break;
    case Kind::kDrop:
      plan.drop_when(matches);
      break;
    case Kind::kCorrupt:
      // Offset 200 lands inside the quote of a KEYREQ; for 17-byte protocol
      // frames it clamps to the last byte. Either way: detected, rejected.
      plan.corrupt_when(matches, /*offset=*/200);
      break;
  }

  Result<hv::MigrationReport> run = Error(ErrorCode::kInternal, "unset");
  Result<hv::MigrationReport> target_report =
      Error(ErrorCode::kInternal, "unset");
  Status probe = OkStatus();
  uint64_t counter = 0;
  bool has_instance = false, on_target = false, lost = false;
  uint64_t started_ns = 0, finished_ns = 0;

  world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host.create(ctx).ok());
    {
      auto ch = world.make_channel();
      world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
        owner.serve_one(t, c->b());
      });
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kProvision;
      cmd.channel = ch->a();
      ASSERT_TRUE(host.mailbox().post(ctx, cmd).status.ok());
    }
    Writer w;
    w.u64(42);
    ASSERT_TRUE(host.ecall(ctx, 0, kEcallAdd, w.data()).ok());

    migration::VmMigrationSession session(world, vm, guest, source, target,
                                          migration::VmMigrationSession::Options{});
    session.manage(host);

    // Channel 0 = migration link (opened by run()); channel 1 = the key
    // handshake the restore path opens between the two control threads.
    int next_channel = 0;
    int wanted = mc.via == Via::kMigrationLink ? 0 : 1;
    world.set_channel_interceptor([&](sim::Channel& ch) {
      if (next_channel++ == wanted)
        plan.install(mc.a_to_b ? ch.a_to_b() : ch.b_to_a());
    });

    started_ns = ctx.now();
    run = session.run(ctx);
    finished_ns = ctx.now();
    target_report = session.target_report();

    lost = host.instance_lost();
    has_instance = host.instance() != nullptr;
    if (has_instance) on_target = host.instance()->machine == &target;
    auto got = host.ecall(ctx, 0, kEcallGet, {});
    probe = got.status();
    if (got.ok()) {
      Reader r(*got);
      counter = r.u64();
    }
  });
  ASSERT_TRUE(world.executor().run()) << "virtual deadlock under fault";

  SCOPED_TRACE(std::string("stage: ") + mc.stage);
  EXPECT_GE(plan.faults_fired(), 1u) << "the scripted fault never fired";
  // Bounded virtual time: every abort path resolves well within the sum of
  // the protocol's own timeouts — nothing waits forever.
  EXPECT_LT(finished_ns - started_ns, 300'000'000'000ull);

  if (mc.expect_run_ok) {
    EXPECT_TRUE(run.ok()) << run.status().to_string();
  } else {
    EXPECT_EQ(run.status().code(), mc.run_code) << run.status().to_string();
  }

  switch (mc.survivor) {
    case Survivor::kSource:
      ASSERT_TRUE(has_instance);
      EXPECT_FALSE(on_target);
      EXPECT_FALSE(lost);
      ASSERT_TRUE(probe.ok()) << probe.to_string();
      EXPECT_EQ(counter, 42u);  // rollback preserved state
      EXPECT_TRUE(vm.running());
      EXPECT_FALSE(target_report.ok());
      break;
    case Survivor::kTarget:
      ASSERT_TRUE(has_instance);
      EXPECT_TRUE(on_target);
      EXPECT_FALSE(lost);
      ASSERT_TRUE(probe.ok()) << probe.to_string();
      EXPECT_EQ(counter, 42u);  // migrated state intact
      break;
    case Survivor::kNeither:
      // Post-commit failure: the source is gone (or useless) and the target
      // never became runnable. Pending work fails fast instead of hanging.
      EXPECT_FALSE(has_instance);
      EXPECT_TRUE(lost);
      EXPECT_EQ(probe.code(), ErrorCode::kAborted) << probe.to_string();
      EXPECT_FALSE(target_report.ok());
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Stages, FaultMatrix,
    ::testing::Values(
        // Link dies during plain pre-copy: nothing was frozen yet; the
        // source rolls back trivially and keeps running.
        MatrixCase{"precopy_round_sever", "pre-copy round",
                   Via::kMigrationLink, /*a_to_b=*/true, Kind::kSever,
                   kTagRound, false, false, ErrorCode::kDeadlineExceeded,
                   Survivor::kSource},
        // Link dies on the round that carries the enclave checkpoints: the
        // enclaves are parked and the key is armed — cancel must delete
        // Kmigrate, unpark the workers and keep the source runnable.
        MatrixCase{"checkpoint_round_sever", "enclave prepare",
                   Via::kMigrationLink, true, Kind::kSever, kTagRound,
                   /*checkpoint_round=*/true, false,
                   ErrorCode::kDeadlineExceeded, Survivor::kSource},
        // Link dies exactly at stop-and-copy: the VM is stopped when the
        // failure is detected; rollback must resume it on the source.
        MatrixCase{"stop_and_copy_sever", "stop-and-copy",
                   Via::kMigrationLink, true, Kind::kSever, kTagStop, false,
                   false, ErrorCode::kDeadlineExceeded, Survivor::kSource},
        // Only the resume ack vanishes: the target is live and its restore
        // report proves commit — the migration still succeeds.
        MatrixCase{"resume_ack_drop", "resume ack",
                   Via::kMigrationLink, /*a_to_b=*/false, Kind::kDrop,
                   kTagResumeAck, false, /*expect_run_ok=*/true,
                   ErrorCode::kInternal, Survivor::kTarget},
        // Attestation sabotage: the KEYREQ quote is corrupted in flight.
        // The source enclave refuses to serve, the target cannot restore,
        // and the committed VM leaves no runnable enclave anywhere.
        MatrixCase{"attestation_corrupt", "attestation / key exchange",
                   Via::kHandshake, /*a_to_b=*/false, Kind::kCorrupt,
                   /*tag=*/0, false, false, ErrorCode::kAborted,
                   Survivor::kNeither},
        // The key request never reaches the source: both control threads
        // time out (bounded), restore fails post-commit.
        MatrixCase{"keyreq_sever", "key exchange", Via::kHandshake, false,
                   Kind::kSever, 0, false, false, ErrorCode::kAborted,
                   Survivor::kNeither},
        // Kmigrate delivery itself is lost *after* the source committed
        // (sending KEYREP self-destroys it): the strictest case — neither
        // side may come back, and nothing may hang.
        MatrixCase{"keyrep_sever", "Kmigrate delivery", Via::kHandshake,
                   /*a_to_b=*/true, Kind::kSever, 0, false, false,
                   ErrorCode::kAborted, Survivor::kNeither}),
    [](const auto& info) { return info.param.name; });

// After a cancelled migration the source must be fully reusable: a second,
// fault-free migration of the same enclave succeeds end to end.
TEST(FaultRecovery, CancelledMigrationCanBeRetriedSuccessfully) {
  hv::World world(4);
  hv::Machine& source = world.add_machine("source");
  hv::Machine& target = world.add_machine("target");
  hv::VmConfig cfg;
  cfg.memory_mb = 256;
  hv::Vm vm(cfg, hv::DirtyModel{});
  guestos::GuestOs guest(source, vm);
  crypto::Drbg rng(to_bytes("retry-bed"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair dev_signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("owner")));

  guestos::Process& proc = guest.create_process("app");
  sdk::BuildInput in;
  in.program = make_counter_program();
  in.layout.num_workers = 2;
  sdk::BuildOutput built =
      sdk::build_enclave_image(in, dev_signer, world.ias().service_pk(), rng);
  owner.enroll(built.image.measure(), built.owner);
  sdk::EnclaveHost host(guest, proc, std::move(built), world.ias(),
                        rng.fork(to_bytes("host")));

  world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host.create(ctx).ok());
    {
      auto ch = world.make_channel();
      world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
        owner.serve_one(t, c->b());
      });
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kProvision;
      cmd.channel = ch->a();
      ASSERT_TRUE(host.mailbox().post(ctx, cmd).status.ok());
    }
    Writer w;
    w.u64(7);
    ASSERT_TRUE(host.ecall(ctx, 0, kEcallAdd, w.data()).ok());

    // Attempt 1: the checkpoint round is severed; the migration aborts and
    // rolls back.
    {
      sim::FaultPlan plan;
      plan.sever_when(is_checkpoint_round);
      int next_channel = 0;
      world.set_channel_interceptor([&](sim::Channel& ch) {
        if (next_channel++ == 0) plan.install(ch.a_to_b());
      });
      migration::VmMigrationSession session(
          world, vm, guest, source, target,
          migration::VmMigrationSession::Options{});
      session.manage(host);
      auto run = session.run(ctx);
      EXPECT_EQ(run.status().code(), ErrorCode::kDeadlineExceeded);
      world.set_channel_interceptor(nullptr);
    }
    // The enclave works between attempts (and the key was wiped by cancel).
    ASSERT_TRUE(host.ecall(ctx, 0, kEcallAdd, w.data()).ok());

    // Attempt 2: clean run; the enclave lands on the target with both adds.
    {
      migration::VmMigrationSession session(
          world, vm, guest, source, target,
          migration::VmMigrationSession::Options{});
      session.manage(host);
      auto run = session.run(ctx);
      ASSERT_TRUE(run.ok()) << run.status().to_string();
    }
    ASSERT_NE(host.instance(), nullptr);
    EXPECT_EQ(host.instance()->machine, &target);
    auto got = host.ecall(ctx, 0, kEcallGet, {});
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    Reader r(*got);
    EXPECT_EQ(r.u64(), 14u);
  });
  ASSERT_TRUE(world.executor().run());
}

// ---------------------------------------------------------------------------
// Store failure matrix: faults against the durable snapshot path. A torn
// write must leave no partial snapshot behind, an unreachable counter
// service must fail the restore closed (bounded, clean error, retryable),
// and a stale head served by the untrusted store must be refused by the
// counter check.

struct StoreFaultBed {
  hv::World world{4};
  hv::Machine* source = &world.add_machine("src");
  hv::Vm vm{hv::VmConfig{}, hv::DirtyModel{}};
  guestos::GuestOs guest{*source, vm};
  guestos::Process* process = &guest.create_process("app");
  crypto::Drbg rng{to_bytes("store-fault")};
  crypto::SigKeyPair signer = [] {
    crypto::Drbg r(to_bytes("dev"));
    return crypto::sig_keygen(r);
  }();
  migration::EnclaveOwner owner{world.ias(), crypto::Drbg(to_bytes("own"))};
  store::CounterService counters{world.ias(), crypto::Drbg(to_bytes("ctr"))};
  store::SealedSnapshotStore snapshots;
  migration::EnclaveMigrator migrator{world};

  std::unique_ptr<sdk::EnclaveHost> make_host() {
    sdk::BuildInput in;
    in.program = make_counter_program();
    in.layout.num_workers = 2;
    in.counter_service_pk = counters.public_key();
    sdk::BuildOutput built =
        sdk::build_enclave_image(in, signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    return std::make_unique<sdk::EnclaveHost>(guest, *process,
                                              std::move(built), world.ias(),
                                              rng.fork(to_bytes("h")));
  }

  migration::EnclaveMigrateOptions opts() {
    migration::EnclaveMigrateOptions o;
    o.counter_service = &counters;
    return o;
  }

  void provision(sim::ThreadCtx& ctx, sdk::EnclaveHost& host) {
    auto ch = world.make_channel();
    world.executor().spawn("owner", [this, c = ch.get()](sim::ThreadCtx& t) {
      owner.serve_one(t, c->b());
    });
    sdk::ControlCmd cmd;
    cmd.type = sdk::ControlCmd::Type::kProvision;
    cmd.channel = ch->a();
    ASSERT_TRUE(host.mailbox().post(ctx, cmd).status.ok());
  }

  void add(sim::ThreadCtx& ctx, sdk::EnclaveHost& host, uint64_t delta) {
    Writer w;
    w.u64(delta);
    ASSERT_TRUE(host.ecall(ctx, 0, kEcallAdd, w.data()).ok());
  }

  uint64_t get(sim::ThreadCtx& ctx, sdk::EnclaveHost& host) {
    auto got = host.ecall(ctx, 0, kEcallGet, {});
    if (!got.ok()) return ~0ull;
    Reader r(*got);
    return r.u64();
  }
};

TEST(StoreFault, TornWriteMidSealLeavesNoPartialSnapshot) {
  StoreFaultBed bed;
  auto host = bed.make_host();
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    bed.add(ctx, *host, 5);

    bed.snapshots.fail_next_put_torn();
    auto id = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                             bed.opts());
    EXPECT_EQ(id.status().code(), ErrorCode::kUnavailable)
        << id.status().to_string();
    // Atomicity: nothing became visible — no object, no head pointer.
    EXPECT_EQ(bed.snapshots.object_count(), 0u);
    EXPECT_EQ(bed.snapshots.torn_writes(), 1u);
    crypto::Digest mre = host->image().measure();
    EXPECT_EQ(bed.snapshots.head(ctx, Bytes(mre.begin(), mre.end()))
                  .status().code(),
              ErrorCode::kNotFound);

    // The enclave is unharmed and the very next attempt commits.
    bed.add(ctx, *host, 1);
    auto retry = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                                bed.opts());
    ASSERT_TRUE(retry.ok()) << retry.status().to_string();
    EXPECT_EQ(bed.snapshots.object_count(), 1u);
  });
  ASSERT_TRUE(bed.world.executor().run());
}

TEST(StoreFault, CounterServiceDownFailsRestoreClosed) {
  StoreFaultBed bed;
  auto host = bed.make_host();
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    bed.add(ctx, *host, 8);
    auto id = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                             bed.opts());
    ASSERT_TRUE(id.ok());
    host->crash_instance(ctx);

    // Service partitioned away: without an OPENGRANT there is no sealing
    // key. The restore fails closed after the bounded channel timeout and
    // leaves no half-bound instance.
    bed.counters.set_available(false);
    uint64_t t0 = ctx.now();
    Status st = bed.migrator.restore_from_store(ctx, *host, bed.snapshots,
                                                {}, bed.opts());
    EXPECT_EQ(st.code(), ErrorCode::kDeadlineExceeded) << st.to_string();
    EXPECT_LT(ctx.now() - t0, 60'000'000'000ull);
    EXPECT_EQ(host->instance(), nullptr);

    // Pure availability failure: once the service heals, the same head
    // restores fine (the epoch was never consumed).
    bed.counters.set_available(true);
    ASSERT_TRUE(bed.migrator.restore_from_store(ctx, *host, bed.snapshots,
                                                {}, bed.opts()).ok());
    EXPECT_EQ(bed.get(ctx, *host), 8u);
  });
  ASSERT_TRUE(bed.world.executor().run());
}

TEST(StoreFault, StaleHeadFromUntrustedStoreIsRefusedByCounter) {
  StoreFaultBed bed;
  auto host = bed.make_host();
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    bed.add(ctx, *host, 2);
    auto a = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                            bed.opts());
    ASSERT_TRUE(a.ok());
    host->crash_instance(ctx);
    ASSERT_TRUE(bed.migrator.restore_from_store(ctx, *host, bed.snapshots,
                                                {}, bed.opts()).ok());
    bed.add(ctx, *host, 3);
    auto b = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                            bed.opts());
    ASSERT_TRUE(b.ok());
    host->crash_instance(ctx);

    // A rollback-minded store serves yesterday's head. The envelope parses,
    // the identity matches — but its counter epoch was consumed by the first
    // restore, so the service refuses the OPENGRANT.
    bed.snapshots.serve_stale_head_once();
    Status st = bed.migrator.restore_from_store(ctx, *host, bed.snapshots,
                                                {}, bed.opts());
    EXPECT_EQ(st.code(), ErrorCode::kPermissionDenied) << st.to_string();

    // The honest head still restores: latest state, nothing lost.
    ASSERT_TRUE(bed.migrator.restore_from_store(ctx, *host, bed.snapshots,
                                                {}, bed.opts()).ok());
    EXPECT_EQ(bed.get(ctx, *host), 5u);
  });
  ASSERT_TRUE(bed.world.executor().run());
}

}  // namespace
}  // namespace mig
