// Additional crypto edge cases: more published vectors, boundary conditions,
// and adversarial inputs to the sealing/parsing layers.
#include <gtest/gtest.h>

#include "crypto/aead.h"
#include "crypto/bignum.h"
#include "crypto/ciphers.h"
#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "sim/rng.h"

namespace mig::crypto {
namespace {

TEST(Sha256Edge, BlockBoundaryLengths) {
  // 55/56/57 and 63/64/65 bytes cross the padding boundaries.
  std::map<size_t, std::string> known = {
      {55, ""}, {56, ""}, {57, ""}, {63, ""}, {64, ""}, {65, ""}};
  for (auto& [len, _] : known) {
    Bytes a(len, 'a');
    Digest d1 = Sha256::hash(a);
    // Streamed one byte at a time must agree.
    Sha256 ctx;
    for (size_t i = 0; i < len; ++i) ctx.update(ByteSpan(a).subspan(i, 1));
    EXPECT_EQ(ctx.finish(), d1) << len;
  }
  // Known vector: 56 'a's.
  EXPECT_EQ(hex_encode(Sha256::hash(Bytes(64, 'a'))),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(HmacEdge, KeyExactlyBlockSized) {
  Bytes key(64, 0x0b);
  Bytes key65(65, 0x0b);
  // 64-byte key is used as-is; 65-byte key is hashed first — they differ.
  EXPECT_NE(hmac_sha256(key, to_bytes("m")), hmac_sha256(key65, to_bytes("m")));
  // Empty key and empty message are well-defined.
  Digest d = hmac_sha256({}, {});
  EXPECT_EQ(hex_encode(d),
            "b613679a0814d9ec772f95d778c35fc5ff1697c493715653c6c712144292c5ad");
}

TEST(ChaChaEdge, CounterAndNonceSeparation) {
  Bytes key = Drbg(to_bytes("k")).generate(32);
  Bytes n1(12, 1), n2(12, 2);
  Bytes a(64, 0), b(64, 0), c(64, 0);
  chacha20_xor(key, n1, 0, a);
  chacha20_xor(key, n2, 0, b);
  chacha20_xor(key, n1, 1, c);
  EXPECT_NE(a, b);  // different nonce
  EXPECT_NE(a, c);  // different counter
  // Block boundary: a 65-byte message's first 64 bytes match the 64-byte
  // keystream.
  Bytes d(65, 0);
  chacha20_xor(key, n1, 0, d);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), d.begin()));
}

TEST(DesEdge, WeakKeyStillRoundTrips) {
  // 0x0101... is a classic DES weak key; we don't reject it (the paper's
  // prototype didn't either), but enc/dec must stay consistent.
  Bytes weak(8, 0x01);
  Bytes pt = Drbg(to_bytes("p")).generate(64);
  EXPECT_EQ(des_cbc_decrypt(weak, des_cbc_encrypt(weak, pt)), pt);
}

TEST(AesEdge, DecryptRejectsBadPaddingAndSize) {
  Bytes key = hex_decode("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes iv(16, 0);
  EXPECT_TRUE(aes128_cbc_decrypt(key, iv, Bytes(15, 0)).empty());
  Bytes ct = aes128_cbc_encrypt(key, iv, to_bytes("hello"));
  ct.back() ^= 0x80;  // clobber the padding byte
  Bytes out = aes128_cbc_decrypt(key, iv, ct);
  // Either empty (padding invalid) or different from "hello".
  EXPECT_NE(to_string(out), "hello");
}

TEST(BigNumEdge, ZeroAndOneIdentities) {
  BigNum zero, one(1);
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero + one, one);
  EXPECT_EQ(one * zero, zero);
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ((one - one), zero);
  // x^0 mod m == 1; 0^e mod m == 0.
  BigNum m(97);
  EXPECT_EQ(BigNum(5).modexp(zero, m), one);
  EXPECT_EQ(zero.modexp(BigNum(3), m), zero);
}

TEST(BigNumEdge, PaddedSerializationWidth) {
  BigNum x(0xabcd);
  Bytes padded = x.to_bytes_padded(16);
  EXPECT_EQ(padded.size(), 16u);
  EXPECT_EQ(BigNum::from_bytes(padded), x);
  EXPECT_THROW((void)x.to_bytes_padded(1), CheckFailure);
}

TEST(BigNumEdge, DivModByLargerAndEqual) {
  BigNum a(100), b(300);
  auto [q1, r1] = BigNum::divmod(a, b);
  EXPECT_TRUE(q1.is_zero());
  EXPECT_EQ(r1, a);
  auto [q2, r2] = BigNum::divmod(a, a);
  EXPECT_EQ(q2, BigNum(1));
  EXPECT_TRUE(r2.is_zero());
  EXPECT_THROW(BigNum::divmod(a, BigNum()), CheckFailure);
}

TEST(DhEdge, SharedSecretNotEqualToEitherPublic) {
  Drbg rng(to_bytes("d"));
  DhKeyPair a = dh_generate(rng);
  DhKeyPair b = dh_generate(rng);
  Bytes s = *dh_shared(a.priv, b.pub);
  EXPECT_NE(s, a.pub.to_bytes_padded(128));
  EXPECT_NE(s, b.pub.to_bytes_padded(128));
}

TEST(SchnorrEdge, EmptyAndHugeMessages) {
  Drbg rng(to_bytes("s"));
  SigKeyPair kp = sig_keygen(rng);
  Bytes empty;
  Bytes sig = sig_sign(kp.sk, empty, rng);
  EXPECT_TRUE(sig_verify(kp.pk, empty, sig));
  Bytes huge = Drbg(to_bytes("big")).generate(1 << 16);
  Bytes sig2 = sig_sign(kp.sk, huge, rng);
  EXPECT_TRUE(sig_verify(kp.pk, huge, sig2));
  EXPECT_FALSE(sig_verify(kp.pk, empty, sig2));
}

TEST(AeadEdge, EmptySealedAndHostileHeaders) {
  Bytes key = Drbg(to_bytes("k")).generate(32);
  EXPECT_FALSE(open(key, {}).ok());
  EXPECT_FALSE(open(key, Bytes(36, 0)).ok());
  // A sealed blob opened as a prefix/suffix must fail.
  Bytes sealed = seal(CipherAlg::kChaCha20, key, to_bytes("payload"));
  EXPECT_FALSE(open(key, ByteSpan(sealed).first(sealed.size() - 1)).ok());
  EXPECT_FALSE(open(key, ByteSpan(sealed).subspan(1)).ok());
}

TEST(AeadEdge, FuzzedBlobsNeverCrash) {
  Bytes key = Drbg(to_bytes("k")).generate(32);
  sim::Rng rnd(7);
  Bytes sealed = seal(CipherAlg::kAes128Cbc, key, Bytes(500, 0x77));
  for (int i = 0; i < 200; ++i) {
    Bytes bad = sealed;
    for (int flips = 0; flips < 3; ++flips)
      bad[rnd.below(bad.size())] ^= static_cast<uint8_t>(rnd.below(256));
    if (rnd.below(4) == 0) bad.resize(rnd.below(bad.size() + 1));
    if (bad == sealed) continue;
    EXPECT_FALSE(open(key, bad).ok()) << i;
  }
}

// ---- chunked sealing (the checkpoint pipeline's AEAD layer) ---------------

TEST(AeadChunk, SealOpenRoundTripAndRoot) {
  Bytes key = Drbg(to_bytes("chunk-key")).generate(32);
  ChunkSealer sealer(CipherAlg::kRc4, key);
  std::vector<Bytes> plain = {Bytes(100, 0x11), Bytes(200, 0x22),
                              Bytes(50, 0x33)};
  std::vector<Bytes> sealed;
  for (size_t i = 0; i < plain.size(); ++i) {
    auto s = sealer.seal_chunk(i, plain[i]);
    ASSERT_TRUE(s.ok()) << s.status().to_string();
    sealed.push_back(std::move(*s));
  }
  auto root = sealer.integrity_root();
  ASSERT_TRUE(root.ok()) << root.status().to_string();

  ChunkOpener opener(key);
  for (size_t i = 0; i < sealed.size(); ++i) {
    auto p = opener.open_chunk(i, sealed[i]);
    ASSERT_TRUE(p.ok()) << p.status().to_string();
    EXPECT_EQ(*p, plain[i]);
  }
  EXPECT_TRUE(opener.verify_root(sealed.size(), *root).ok());
}

TEST(AeadChunk, ChunkIndexReuseWithinSessionRejected) {
  // Per-chunk keys stand in for nonces: sealing the same index twice in one
  // session would be two ciphertexts under one keystream. The sealer must
  // refuse rather than silently emit them.
  Bytes key = Drbg(to_bytes("chunk-key")).generate(32);
  ChunkSealer sealer(CipherAlg::kRc4, key);
  ASSERT_TRUE(sealer.seal_chunk(0, Bytes(64, 0xaa)).ok());
  auto again = sealer.seal_chunk(0, Bytes(64, 0xbb));
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), ErrorCode::kInvalidArgument);
  // The session is otherwise unharmed: fresh indices still seal.
  EXPECT_TRUE(sealer.seal_chunk(1, Bytes(64, 0xbb)).ok());
}

TEST(AeadChunk, OpenerRejectsReplayedIndex) {
  Bytes key = Drbg(to_bytes("chunk-key")).generate(32);
  ChunkSealer sealer(CipherAlg::kRc4, key);
  auto s0 = sealer.seal_chunk(0, Bytes(64, 0xaa));
  ASSERT_TRUE(s0.ok());
  ChunkOpener opener(key);
  ASSERT_TRUE(opener.open_chunk(0, *s0).ok());
  EXPECT_FALSE(opener.open_chunk(0, *s0).ok());
}

TEST(AeadChunk, ChunksAreNotInterchangeableAcrossIndices) {
  // Chunk 1's sealed bytes presented at index 0 must fail: position is bound
  // by the per-chunk key derivation.
  Bytes key = Drbg(to_bytes("chunk-key")).generate(32);
  ChunkSealer sealer(CipherAlg::kRc4, key);
  ASSERT_TRUE(sealer.seal_chunk(0, Bytes(64, 0xaa)).ok());
  auto s1 = sealer.seal_chunk(1, Bytes(64, 0xbb));
  ASSERT_TRUE(s1.ok());
  ChunkOpener opener(key);
  EXPECT_FALSE(opener.open_chunk(0, *s1).ok());
}

TEST(AeadChunk, RootDetectsTruncationWrongCountAndGaps) {
  Bytes key = Drbg(to_bytes("chunk-key")).generate(32);
  ChunkSealer sealer(CipherAlg::kRc4, key);
  std::vector<Bytes> sealed;
  for (uint64_t i = 0; i < 4; ++i) {
    auto s = sealer.seal_chunk(i, Bytes(32, static_cast<uint8_t>(i)));
    ASSERT_TRUE(s.ok());
    sealed.push_back(std::move(*s));
  }
  auto root = sealer.integrity_root();
  ASSERT_TRUE(root.ok());

  // Opener that saw only 3 of the 4 chunks: wrong count => refused.
  ChunkOpener partial(key);
  for (uint64_t i = 0; i < 3; ++i)
    ASSERT_TRUE(partial.open_chunk(i, sealed[i]).ok());
  Status st = partial.verify_root(3, *root);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kIntegrityViolation);
  // Claiming the full count without having opened every chunk also fails.
  EXPECT_FALSE(partial.verify_root(4, *root).ok());

  // Opener with a gap (skipped chunk 1): incomplete set => refused.
  ChunkOpener gappy(key);
  ASSERT_TRUE(gappy.open_chunk(0, sealed[0]).ok());
  ASSERT_TRUE(gappy.open_chunk(2, sealed[2]).ok());
  EXPECT_FALSE(gappy.verify_root(2, *root).ok());

  // A wrong root of the right shape is refused.
  ChunkOpener full(key);
  for (uint64_t i = 0; i < 4; ++i)
    ASSERT_TRUE(full.open_chunk(i, sealed[i]).ok());
  Bytes wrong(root->begin(), root->end());
  wrong[0] ^= 1;
  EXPECT_FALSE(full.verify_root(4, wrong).ok());
  EXPECT_TRUE(full.verify_root(4, *root).ok());
}

TEST(AeadChunk, RootRequiresContiguousIndicesAtSealer) {
  Bytes key = Drbg(to_bytes("chunk-key")).generate(32);
  ChunkSealer sealer(CipherAlg::kRc4, key);
  ASSERT_TRUE(sealer.seal_chunk(0, Bytes(16, 1)).ok());
  ASSERT_TRUE(sealer.seal_chunk(2, Bytes(16, 2)).ok());  // gap at 1
  EXPECT_FALSE(sealer.integrity_root().ok());
}

TEST(AeadChunk, TamperedChunkRejected) {
  Bytes key = Drbg(to_bytes("chunk-key")).generate(32);
  ChunkSealer sealer(CipherAlg::kChaCha20, key);
  auto s = sealer.seal_chunk(0, Bytes(128, 0x5a));
  ASSERT_TRUE(s.ok());
  Bytes bad = *s;
  bad[bad.size() / 2] ^= 0x01;
  ChunkOpener opener(key);
  EXPECT_FALSE(opener.open_chunk(0, bad).ok());
}

TEST(DrbgEdge, LargeRequestsAndU64Distribution) {
  Drbg d(to_bytes("x"));
  Bytes big = d.generate(100'000);
  EXPECT_EQ(big.size(), 100'000u);
  // Cheap sanity: bytes are not constant and roughly half the bits are set.
  uint64_t ones = 0;
  for (uint8_t b : big) ones += __builtin_popcount(b);
  double fraction = static_cast<double>(ones) / (big.size() * 8);
  EXPECT_NEAR(fraction, 0.5, 0.01);
}

}  // namespace
}  // namespace mig::crypto
