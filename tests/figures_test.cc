// Shape-regression tests: small-scale versions of every paper figure, with
// the qualitative claims asserted. If a refactor breaks a curve's shape,
// these fail before anyone re-runs the full benches.
#include <gtest/gtest.h>

#include "apps/kv.h"
#include "apps/nbench.h"
#include "apps/workloads.h"
#include "guestos/guest_os.h"
#include "hv/machine.h"
#include "migration/owner.h"
#include "migration/session.h"
#include "sdk/builder.h"
#include "sdk/host.h"
#include "util/serde.h"

namespace mig {
namespace {

struct FigBed {
  hv::World world{4};
  hv::Machine* source = &world.add_machine("src");
  hv::Machine* target = &world.add_machine("dst");
  hv::Vm vm{hv::VmConfig{}, hv::DirtyModel{}};
  hv::Vm host_vm{hv::VmConfig{.name = "host-env"}, hv::DirtyModel{}};
  guestos::GuestOs guest{*source, vm};
  guestos::GuestOs target_host{*target, host_vm};
  crypto::Drbg rng{to_bytes("fig")};
  crypto::SigKeyPair signer = [] {
    crypto::Drbg r(to_bytes("dev"));
    return crypto::sig_keygen(r);
  }();
  crypto::SigKeyPair identity = [] {
    crypto::Drbg r(to_bytes("dev-id"));
    return crypto::sig_keygen(r);
  }();
  migration::EnclaveOwner owner{world.ias(), crypto::Drbg(to_bytes("own"))};
  std::vector<std::unique_ptr<sdk::EnclaveHost>> hosts;

  sdk::EnclaveHost& add(guestos::Process& proc, sdk::LayoutParams layout) {
    sdk::BuildInput in;
    in.program = apps::find_workload("mcrypt")->make_program();
    in.layout = layout;
    in.identity_override = identity;
    sdk::BuildOutput built =
        sdk::build_enclave_image(in, signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    hosts.push_back(std::make_unique<sdk::EnclaveHost>(
        guest, proc, std::move(built), world.ias(), rng.fork(to_bytes("h"))));
    return *hosts.back();
  }

  static sdk::LayoutParams small() {
    sdk::LayoutParams p;
    p.num_workers = 2;
    p.data_pages = 1;
    p.heap_pages = 1;
    return p;
  }

  void provision(sim::ThreadCtx& ctx, sdk::EnclaveHost& h) {
    auto ch = world.make_channel();
    world.executor().spawn("owner", [this, c = ch.get()](sim::ThreadCtx& t) {
      owner.serve_one(t, c->b());
    });
    sdk::ControlCmd cmd;
    cmd.type = sdk::ControlCmd::Type::kProvision;
    cmd.channel = ch->a();
    ASSERT_TRUE(h.mailbox().post(ctx, cmd).status.ok());
  }
};

// Fig 9(c) shape: per-enclave two-phase time ~flat at <=4 enclaves (spare
// VCPUs), larger when control threads outnumber them.
TEST(FigureShapes, Fig9cTwoPhaseFlatThenContended) {
  auto avg_two_phase = [](int n) {
    FigBed bed;
    guestos::Process& proc = bed.guest.create_process("p");
    for (int i = 0; i < n; ++i) bed.add(proc, FigBed::small());
    uint64_t total = 0;
    bed.world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
      for (auto& h : bed.hosts) ASSERT_TRUE(h->create(ctx).ok());
      std::vector<std::unique_ptr<sim::Event>> done;
      std::vector<uint64_t> times(bed.hosts.size());
      for (size_t i = 0; i < bed.hosts.size(); ++i) {
        done.push_back(std::make_unique<sim::Event>(bed.world.executor()));
        sdk::EnclaveHost* h = bed.hosts[i].get();
        sim::Event* ev = done.back().get();
        uint64_t* out = &times[i];
        bed.world.executor().spawn("c", [h, ev, out](sim::ThreadCtx& c) {
          uint64_t t0 = c.now();
          sdk::ControlCmd cmd;
          cmd.type = sdk::ControlCmd::Type::kPrepareCheckpoint;
          MIG_CHECK(h->mailbox().post(c, cmd).status.ok());
          *out = c.now() - t0;
          ev->set(c);
        });
      }
      for (auto& ev : done) ev->wait(ctx);
      for (uint64_t t : times) total += t;
    });
    MIG_CHECK_MSG(bed.world.executor().run(), "hang");
    return total / n;
  };
  uint64_t at1 = avg_two_phase(1);
  uint64_t at4 = avg_two_phase(4);
  uint64_t at8 = avg_two_phase(8);
  // Flat region: within 5%.
  EXPECT_NEAR(static_cast<double>(at4) / at1, 1.0, 0.05);
  // Contended region: clearly slower per enclave.
  EXPECT_GT(at8, at4 * 1.3);
  // Calibration anchor: the paper's ~255 us at <=4 enclaves (we land within
  // ~30%).
  EXPECT_GT(at1, 200'000u);
  EXPECT_LT(at1, 400'000u);
}

// Fig 9(d) shape: total suspend time grows superlinearly past 4 VCPUs.
TEST(FigureShapes, Fig9dDumpAllGrowsWithEnclaveCount) {
  auto dump_all = [](int n) {
    FigBed bed;
    migration::VmMigrationSession session(
        bed.world, bed.vm, bed.guest, *bed.source, *bed.target,
        migration::VmMigrationSession::Options{});
    for (int i = 0; i < n; ++i) {
      guestos::Process& proc =
          bed.guest.create_process("p" + std::to_string(i));
      session.manage(bed.add(proc, FigBed::small()));
    }
    uint64_t elapsed = 0;
    bed.world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
      for (auto& h : bed.hosts) {
        ASSERT_TRUE(h->create(ctx).ok());
        bed.provision(ctx, *h);
      }
      uint64_t t0 = ctx.now();
      ASSERT_TRUE(bed.guest.prepare_enclaves_for_migration(ctx).ok());
      elapsed = ctx.now() - t0;
    });
    MIG_CHECK(bed.world.executor().run());
    return elapsed;
  };
  uint64_t at2 = dump_all(2);
  uint64_t at8 = dump_all(8);
  EXPECT_GT(at8, at2 * 1.5);
  EXPECT_LT(at8, 2'000'000u);  // paper: <=940 us; allow 2x headroom
}

// Fig 10(a) shape: restore time is linear in enclave count (serial rebuild).
TEST(FigureShapes, Fig10aRestoreLinear) {
  auto restore_all = [](int n) {
    FigBed bed;
    migration::VmMigrationSession::Options opts;
    opts.use_agent = true;
    opts.target_host_os = &bed.target_host;
    opts.dev_signer = bed.signer;
    migration::VmMigrationSession session(bed.world, bed.vm, bed.guest,
                                          *bed.source, *bed.target, opts);
    for (int i = 0; i < n; ++i) {
      guestos::Process& proc =
          bed.guest.create_process("p" + std::to_string(i));
      session.manage(bed.add(proc, FigBed::small()));
    }
    Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "x");
    bed.world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
      for (auto& h : bed.hosts) {
        ASSERT_TRUE(h->create(ctx).ok());
        bed.provision(ctx, *h);
      }
      report = session.run(ctx);
    });
    MIG_CHECK(bed.world.executor().run());
    MIG_CHECK_MSG(report.ok(), report.status().to_string());
    return report->enclave_restore_ns;
  };
  uint64_t at1 = restore_all(1);
  uint64_t at4 = restore_all(4);
  EXPECT_NEAR(static_cast<double>(at4) / at1, 4.0, 0.4);
}

// Fig 11 shape: two-phase checkpoint time linear in KV state size.
TEST(FigureShapes, Fig11CheckpointLinearInStateSize) {
  auto checkpoint_time = [](uint64_t mb) {
    FigBed bed;
    guestos::Process& proc = bed.guest.create_process("kv");
    sdk::BuildInput in;
    in.program = apps::make_kv_program();
    in.layout = apps::kv_layout(mb);
    sdk::BuildOutput built = sdk::build_enclave_image(
        in, bed.signer, bed.world.ias().service_pk(), bed.rng);
    sdk::EnclaveHost host(bed.guest, proc, std::move(built), bed.world.ias(),
                          bed.rng.fork(to_bytes("h")));
    uint64_t elapsed = 0;
    bed.world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
      ASSERT_TRUE(host.create(ctx).ok());
      Writer fill;
      fill.u64(mb * 256);
      fill.u64(900);
      ASSERT_TRUE(host.ecall(ctx, 0, apps::kKvEcallFill, fill.data()).ok());
      uint64_t t0 = ctx.now();
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kPrepareCheckpoint;
      cmd.cipher = crypto::CipherAlg::kAes128CbcNi;
      ASSERT_TRUE(host.mailbox().post(ctx, cmd).status.ok());
      elapsed = ctx.now() - t0;
      ASSERT_TRUE(host.destroy(ctx).ok());
    });
    MIG_CHECK(bed.world.executor().run());
    return elapsed;
  };
  uint64_t at1 = checkpoint_time(1);
  uint64_t at4 = checkpoint_time(4);
  EXPECT_NEAR(static_cast<double>(at4) / at1, 4.0, 0.6);
}

// Fig 9(a) anchor: String Sort is the outlier; everything else is mild.
TEST(FigureShapes, Fig9aStringSortIsTheOutlier) {
  const sim::CostModel& cm = sim::default_cost_model();
  double worst_other = 0, string_sort = 0;
  for (const apps::NbenchKernel& k : apps::nbench_kernels()) {
    double ratio = static_cast<double>(
                       apps::nbench_enclave_ns(k, cm, 92ull << 20)) /
                   apps::nbench_native_ns(k, cm);
    if (k.name == "StringSort") {
      string_sort = ratio;
    } else {
      worst_other = std::max(worst_other, ratio);
    }
  }
  EXPECT_GT(string_sort, 4 * worst_other);
}

}  // namespace
}  // namespace mig
