// Attack/defense tests for the paper's security properties:
//   §IV-A data-consistency attack (malicious OS vs two-phase checkpointing)
//   §V-A fork attack (self-destroy + single secure channel)
//   §V-A rollback attack (Kmigrate rotation, owner-audited snapshots)
//   replay attack (fresh session keys per exchange)
//   P-1 confidentiality (nothing sensitive on the wire)
#include <gtest/gtest.h>

#include "apps/bank.h"
#include "attacks/malicious_os.h"
#include "migration/owner.h"
#include "migration/session.h"
#include "util/serde.h"

namespace mig::attacks {
namespace {

using apps::kBankEcallBalances;
using apps::kBankEcallInit;
using apps::kBankEcallTransfer;

struct AttackBed {
  hv::World world;
  hv::Machine* source;
  hv::Machine* target;
  hv::Vm vm;
  hv::Vm target_vm;
  std::unique_ptr<guestos::GuestOs> guest;       // may be malicious
  guestos::GuestOs target_guest;                 // target host environment
  guestos::Process* process = nullptr;
  crypto::Drbg rng{to_bytes("attack-bed")};
  crypto::SigKeyPair dev_signer;
  migration::EnclaveOwner owner;

  explicit AttackBed(bool malicious_os)
      : world(4),
        source(&world.add_machine("source")),
        target(&world.add_machine("target")),
        vm(hv::VmConfig{}, hv::DirtyModel{}),
        target_vm(hv::VmConfig{.name = "target-host"}, hv::DirtyModel{}),
        target_guest(*target, target_vm),
        owner(world.ias(), crypto::Drbg(to_bytes("owner"))) {
    if (malicious_os) {
      guest = std::make_unique<MaliciousGuestOs>(*source, vm);
    } else {
      guest = std::make_unique<guestos::GuestOs>(*source, vm);
    }
    process = &guest->create_process("bank-app");
    crypto::Drbg srng(to_bytes("dev"));
    dev_signer = crypto::sig_keygen(srng);
  }

  sdk::BuildOutput build(std::shared_ptr<sdk::EnclaveProgram> prog) {
    sdk::BuildInput in;
    in.program = std::move(prog);
    in.layout.num_workers = 2;
    sdk::BuildOutput built = sdk::build_enclave_image(
        in, dev_signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    return built;
  }

  std::unique_ptr<sdk::EnclaveHost> host_for(guestos::GuestOs& os,
                                             guestos::Process& proc,
                                             sdk::BuildOutput built) {
    return std::make_unique<sdk::EnclaveHost>(os, proc, std::move(built),
                                              world.ias(),
                                              rng.fork(to_bytes("h")));
  }

  void provision(sim::ThreadCtx& ctx, sdk::EnclaveHost& host) {
    auto channel = world.make_channel();
    world.executor().spawn("owner", [this, ch = channel.get()](
                                        sim::ThreadCtx& c) {
      owner.serve_one(c, ch->b());
    });
    sdk::ControlCmd cmd;
    cmd.type = sdk::ControlCmd::Type::kProvision;
    cmd.channel = channel->a();
    ASSERT_TRUE(host.mailbox().post(ctx, cmd).status.ok());
  }
};

// ---- §IV-A: data-consistency attack -----------------------------------------

struct ConsistencyOutcome {
  uint64_t a = 0, b = 0;
};

// Runs the scenario of Fig. 3: a worker mid-transfer while the checkpoint is
// taken, under a lying OS. `use_two_phase` selects defense vs strawman.
// The enclave migrates within the same host object (guest rebind), so the
// in-flight worker can resume on the target if the protocol preserves it.
ConsistencyOutcome run_consistency_scenario(bool use_two_phase) {
  AttackBed bed(/*malicious_os=*/true);
  ConsistencyOutcome out;
  std::atomic<bool> debited{false};
  auto prog = apps::make_bank_program([&] { debited = true; },
                                      /*mid_transfer_work_ns=*/4'000'000);
  auto host = bed.host_for(*bed.guest, *bed.process, bed.build(prog));

  bed.world.executor().spawn("attack", [&](sim::ThreadCtx& ctx) {
    MIG_CHECK(host->create(ctx).ok());
    bed.provision(ctx, *host);
    Writer init;
    init.u64(5000);
    init.u64(0);
    MIG_CHECK(host->ecall(ctx, 0, kBankEcallInit, init.data()).ok());

    // Fig. 3's worker: transfer(5000) from A to B. Daemon: under the
    // strawman it ends up wedged forever, which is part of the damage.
    sim::Event transfer_done(bed.world.executor());
    bed.process->spawn_thread(
        "worker",
        [&](sim::ThreadCtx& wctx) {
          Writer w;
          w.u64(5000);
          (void)host->ecall(wctx, 0, kBankEcallTransfer, w.data());
          transfer_done.set(wctx);
        },
        /*daemon=*/true);
    // Wait for the debit, then checkpoint while the credit is pending.
    ctx.spin_until([&] { return debited.load(); });

    Result<Bytes> blob = Error(ErrorCode::kInternal, "unset");
    if (use_two_phase) {
      migration::EnclaveMigrator migrator(bed.world);
      blob = migrator.prepare(ctx, *host, migration::EnclaveMigrateOptions{});
    } else {
      blob = naive_checkpoint(ctx, *bed.guest, *bed.process, *host);
    }
    MIG_CHECK_MSG(blob.ok(), blob.status().to_string());
    auto source_inst = host->detach_instance();

    // The VM arrives on the target; same-host restore (real migration path).
    bed.guest->set_migration_target(*bed.target);
    MIG_CHECK(bed.guest->resume_enclaves_after_migration(ctx).ok());
    migration::EnclaveMigrator migrator(bed.world);
    Status st = migrator.restore(ctx, *host, *bed.source,
                                 source_inst, std::move(*blob),
                                 migration::EnclaveMigrateOptions{});
    MIG_CHECK_MSG(st.ok(), st.to_string());

    if (use_two_phase) {
      // The in-flight transfer resumes on the target and completes.
      transfer_done.wait(ctx);
    }
    auto got = host->ecall(ctx, 1, kBankEcallBalances, {});
    MIG_CHECK(got.ok());
    Reader r(*got);
    out.a = r.u64();
    out.b = r.u64();
  });
  MIG_CHECK(bed.world.executor().run());
  return out;
}

TEST(ConsistencyAttack, MaliciousOsCorruptsNaiveCheckpoint) {
  ConsistencyOutcome out = run_consistency_scenario(/*use_two_phase=*/false);
  // The strawman captured A already debited but B not yet credited: the
  // restored state violates the sum-of-accounts invariant. (P-3 broken.)
  EXPECT_EQ(out.a, 0u);
  EXPECT_EQ(out.b, 0u);
  EXPECT_NE(out.a + out.b, 5000u);
}

TEST(ConsistencyAttack, TwoPhaseCheckpointingPreservesInvariant) {
  ConsistencyOutcome out = run_consistency_scenario(/*use_two_phase=*/true);
  // Two-phase checkpointing waits for the quiescent point: the transfer
  // either fully happened or... the worker AEX'd mid-transfer and its
  // partial state travels WITH its execution context, so the credit still
  // executes on the target. Either way the invariant holds after the
  // in-flight transfer completes there — but even the raw snapshot keeps
  // both effects coupled. At this read point the transfer has completed.
  EXPECT_EQ(out.a + out.b, 5000u);
}

// ---- §V-A: fork attack --------------------------------------------------------

TEST(ForkAttack, SourceEnclaveSelfDestroysAndSecondRestoreRefused) {
  AttackBed bed(false);
  sdk::BuildOutput built = bed.build(apps::make_bank_program());
  sdk::BuildOutput copy1 = built;
  sdk::BuildOutput copy2 = built;
  auto host = bed.host_for(*bed.guest, *bed.process, std::move(built));
  guestos::Process& tp1 = bed.target_guest.create_process("fork-1");
  guestos::Process& tp2 = bed.target_guest.create_process("fork-2");
  auto target1 = bed.host_for(bed.target_guest, tp1, std::move(copy1));
  auto target2 = bed.host_for(bed.target_guest, tp2, std::move(copy2));

  sim::ThreadId spinner = sim::kInvalidThread;
  bed.world.executor().spawn("attack", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    Writer init;
    init.u64(100);
    init.u64(0);
    ASSERT_TRUE(host->ecall(ctx, 0, kBankEcallInit, init.data()).ok());

    migration::EnclaveMigrator migrator(bed.world);
    migration::EnclaveMigrateOptions opts;
    opts.leave_source_alive = true;  // the operator keeps the source around
    auto blob = migrator.prepare(ctx, *host, opts);
    ASSERT_TRUE(blob.ok());
    Bytes blob_copy = *blob;
    auto source_inst = host->detach_instance();
    sdk::EnclaveInstance* source_raw = source_inst.get();

    // First restore: legitimate migration; source self-destroys.
    Status st = migrator.restore(ctx, *target1, *bed.source,
                                 source_inst, std::move(*blob),
                                 opts);
    ASSERT_TRUE(st.ok()) << st.to_string();

    // Fork attempt 1: restore a second instance from the same checkpoint.
    // The source's control thread refuses a second key exchange (P-5).
    ASSERT_TRUE(target2->create(ctx).ok());
    auto channel = bed.world.make_channel();
    bed.world.executor().spawn("serve-2nd", [&, ch = channel.get()](
                                                sim::ThreadCtx& c) {
      sdk::ControlCmd serve;
      serve.type = sdk::ControlCmd::Type::kServeKey;
      serve.channel = ch->a();
      sdk::ControlReply r = source_raw->mailbox->post(c, serve);
      EXPECT_FALSE(r.status.ok());
      EXPECT_EQ(r.status.code(), ErrorCode::kAborted);
    });
    sdk::ControlCmd restore2;
    restore2.type = sdk::ControlCmd::Type::kRestore;
    restore2.blob = blob_copy;
    restore2.channel = channel->b();
    sdk::ControlReply r2 = target2->mailbox().post(ctx, restore2);
    EXPECT_FALSE(r2.status.ok());  // refused: no key for you

    // Fork attempt 2: "resume" the source enclave. Self-destroy means its
    // global flag is set forever: any entered worker spins and never
    // completes (the paper's exact mechanism).
    host->adopt_instance(
        std::unique_ptr<sdk::EnclaveInstance>(source_raw));
    spinner = bed.world.executor().spawn(
        "forked-worker",
        [&](sim::ThreadCtx& wctx) {
          (void)host->ecall(wctx, 0, kBankEcallBalances, {});
        },
        /*daemon=*/true);
  });
  // Give the forked worker 50 virtual ms — it must still be spinning.
  ASSERT_TRUE(bed.world.executor().run());
  ASSERT_NE(spinner, sim::kInvalidThread);
  EXPECT_FALSE(bed.world.executor().finished(spinner));
}

// ---- §V-A: rollback attack ----------------------------------------------------

TEST(RollbackAttack, StaleCheckpointDiesWithRotatedKmigrate) {
  AttackBed bed(false);
  sdk::BuildOutput built = bed.build(apps::make_bank_program());
  sdk::BuildOutput copy = built;
  auto host = bed.host_for(*bed.guest, *bed.process, std::move(built));
  guestos::Process& tp = bed.target_guest.create_process("rollback");
  auto target = bed.host_for(bed.target_guest, tp, std::move(copy));

  bed.world.executor().spawn("attack", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    migration::EnclaveMigrator migrator(bed.world);

    // Checkpoint v1, then cancel (migration "failed"); Kmigrate deleted.
    auto stale = migrator.prepare(ctx, *host, {});
    ASSERT_TRUE(stale.ok());
    sdk::ControlCmd cancel;
    cancel.type = sdk::ControlCmd::Type::kCancelMigration;
    ASSERT_TRUE(host->mailbox().post(ctx, cancel).status.ok());
    host->finish_migration(ctx, {});

    // State advances (three failed password attempts, say).
    Writer init;
    init.u64(1);
    init.u64(2);
    ASSERT_TRUE(host->ecall(ctx, 0, kBankEcallInit, init.data()).ok());

    // New migration: fresh Kmigrate. The attacker substitutes the stale
    // checkpoint — it cannot decrypt under the new key (P-4).
    auto fresh = migrator.prepare(ctx, *host, {});
    ASSERT_TRUE(fresh.ok());
    auto source_inst = host->detach_instance();
    Status st = migrator.restore(ctx, *target, *bed.source,
                                 source_inst, std::move(*stale),
                                 {});
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::kIntegrityViolation);
  });
  ASSERT_TRUE(bed.world.executor().run());
}

TEST(RollbackAttack, OwnerAuditsEveryCheckpointAndCanRefuseRestores) {
  AttackBed bed(false);
  sdk::BuildOutput built = bed.build(apps::make_bank_program());
  auto host = bed.host_for(*bed.guest, *bed.process, std::move(built));
  bed.world.executor().spawn("attack", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);

    // Legal owner-keyed snapshot (§V-C): needs the owner, gets logged.
    auto ch1 = bed.world.make_channel();
    bed.world.executor().spawn("owner1", [&, ch = ch1.get()](sim::ThreadCtx& c) {
      bed.owner.serve_one(c, ch->b());
    });
    sdk::ControlCmd ckpt;
    ckpt.type = sdk::ControlCmd::Type::kOwnerCheckpoint;
    ckpt.channel = ch1->a();
    sdk::ControlReply snap = host->mailbox().post(ctx, ckpt);
    ASSERT_TRUE(snap.status.ok()) << snap.status.to_string();
    ASSERT_EQ(bed.owner.audit_log().size(), 2u);  // PROVISION + CKPT
    EXPECT_EQ(bed.owner.audit_log()[1].verb, "CKPT");

    // The operator tries to roll back by restoring the snapshot: the owner
    // notices (policy) and refuses the key.
    bed.owner.set_allow_restore(false);
    auto ch2 = bed.world.make_channel();
    bed.world.executor().spawn("owner2", [&, ch = ch2.get()](sim::ThreadCtx& c) {
      bed.owner.serve_one(c, ch->b());
    });
    sdk::ControlCmd restore;
    restore.type = sdk::ControlCmd::Type::kOwnerRestore;
    restore.channel = ch2->a();
    restore.blob = snap.blob;
    sdk::ControlReply r = host->mailbox().post(ctx, restore);
    EXPECT_FALSE(r.status.ok());
    EXPECT_EQ(bed.owner.audit_log().size(), 2u);  // refused => not logged
  });
  ASSERT_TRUE(bed.world.executor().run());
}

// ---- replay attack -------------------------------------------------------------

TEST(ReplayAttack, RecordedKeyExchangeCannotUnlockANewInstance) {
  AttackBed bed(false);
  sdk::BuildOutput built = bed.build(apps::make_bank_program());
  sdk::BuildOutput copy1 = built;
  sdk::BuildOutput copy2 = built;
  auto host = bed.host_for(*bed.guest, *bed.process, std::move(built));
  guestos::Process& tp1 = bed.target_guest.create_process("replay-1");
  guestos::Process& tp2 = bed.target_guest.create_process("replay-2");
  auto target1 = bed.host_for(bed.target_guest, tp1, std::move(copy1));
  auto target2 = bed.host_for(bed.target_guest, tp2, std::move(copy2));

  bed.world.executor().spawn("attack", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    migration::EnclaveMigrator migrator(bed.world);
    auto blob = migrator.prepare(ctx, *host, {});
    ASSERT_TRUE(blob.ok());
    Bytes blob_copy = *blob;
    auto source_inst = host->detach_instance();

    // Record the legitimate key exchange off the wire.
    WireRecorder recorder;
    auto channel = bed.world.make_channel();
    recorder.attach(channel->a_to_b());  // source -> target messages
    bed.world.executor().spawn("serve", [&, ch = channel.get()](
                                            sim::ThreadCtx& c) {
      sdk::ControlCmd serve;
      serve.type = sdk::ControlCmd::Type::kServeKey;
      serve.channel = ch->a();
      (void)source_inst->mailbox->post(c, serve);
    });
    ASSERT_TRUE(target1->create(ctx).ok());
    sdk::ControlCmd restore1;
    restore1.type = sdk::ControlCmd::Type::kRestore;
    restore1.blob = blob_copy;
    restore1.channel = channel->b();
    ASSERT_TRUE(target1->mailbox().post(ctx, restore1).status.ok());
    ASSERT_FALSE(recorder.recorded().empty());

    // Replay the recorded KEYREP at a fresh instance: its DH value differs,
    // so the transcript signature check fails (fresh session keys, §VII-A).
    ASSERT_TRUE(target2->create(ctx).ok());
    auto replay_channel = bed.world.make_channel();
    Bytes keyrep = recorder.recorded().back();
    bed.world.executor().spawn("replayer", [&, ch = replay_channel.get()](
                                               sim::ThreadCtx& c) {
      Bytes req = ch->a().recv(c);  // swallow the fresh KEYREQ
      (void)req;
      ch->a().send(c, keyrep);      // replay the old KEYREP
    });
    sdk::ControlCmd restore2;
    restore2.type = sdk::ControlCmd::Type::kRestore;
    restore2.blob = blob_copy;
    restore2.channel = replay_channel->b();
    sdk::ControlReply r = target2->mailbox().post(ctx, restore2);
    EXPECT_FALSE(r.status.ok());
    EXPECT_EQ(r.status.code(), ErrorCode::kAuthFailure);
  });
  ASSERT_TRUE(bed.world.executor().run());
}

// ---- P-1: confidentiality -------------------------------------------------------

TEST(Confidentiality, NoSecretsOnTheWireDuringMigration) {
  AttackBed bed(false);
  sdk::BuildOutput built = bed.build(apps::make_bank_program());
  sdk::BuildOutput copy = built;
  auto host = bed.host_for(*bed.guest, *bed.process, std::move(built));
  guestos::Process& tp = bed.target_guest.create_process("eavesdrop");
  auto target = bed.host_for(bed.target_guest, tp, std::move(copy));

  bed.world.executor().spawn("attack", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    // A recognizable secret balance.
    Writer init;
    init.u64(0xdeadbeefcafe1234ULL);
    init.u64(0);
    ASSERT_TRUE(host->ecall(ctx, 0, kBankEcallInit, init.data()).ok());

    migration::EnclaveMigrator migrator(bed.world);
    auto blob = migrator.prepare(ctx, *host, {});
    ASSERT_TRUE(blob.ok());
    auto source_inst = host->detach_instance();

    // Eavesdrop on both directions of the key-exchange channel and on the
    // checkpoint blob itself.
    Writer pat;
    pat.u64(0xdeadbeefcafe1234ULL);
    Bytes pattern = pat.take();
    auto contains = [&](ByteSpan hay) {
      return std::search(hay.begin(), hay.end(), pattern.begin(),
                         pattern.end()) != hay.end();
    };
    EXPECT_FALSE(contains(*blob));

    WireRecorder rec_ab, rec_ba;
    auto channel = bed.world.make_channel();
    rec_ab.attach(channel->a_to_b());
    rec_ba.attach(channel->b_to_a());
    bed.world.executor().spawn("serve", [&, ch = channel.get()](
                                            sim::ThreadCtx& c) {
      sdk::ControlCmd serve;
      serve.type = sdk::ControlCmd::Type::kServeKey;
      serve.channel = ch->a();
      (void)source_inst->mailbox->post(c, serve);
    });
    ASSERT_TRUE(target->create(ctx).ok());
    sdk::ControlCmd restore;
    restore.type = sdk::ControlCmd::Type::kRestore;
    restore.blob = *blob;
    restore.channel = channel->b();
    ASSERT_TRUE(target->mailbox().post(ctx, restore).status.ok());

    for (const Bytes& m : rec_ab.recorded()) EXPECT_FALSE(contains(m));
    for (const Bytes& m : rec_ba.recorded()) EXPECT_FALSE(contains(m));
    // ... and the restored enclave still has the secret.
    for (const sdk::PumpPlan& p : std::vector<sdk::PumpPlan>{})
      (void)p;  // no pumps needed: workers were idle
    sdk::ControlCmd finish;
    finish.type = sdk::ControlCmd::Type::kFinishRestore;
    ASSERT_TRUE(target->mailbox().post(ctx, finish).status.ok());
    target->finish_migration(ctx, {});
    auto got = target->ecall(ctx, 0, kBankEcallBalances, {});
    ASSERT_TRUE(got.ok());
    Reader r(*got);
    EXPECT_EQ(r.u64(), 0xdeadbeefcafe1234ULL);
  });
  ASSERT_TRUE(bed.world.executor().run());
}

}  // namespace
}  // namespace mig::attacks
