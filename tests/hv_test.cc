// Hypervisor-layer tests: vEPC accounting and the pre-copy live-migration
// engine (convergence, downtime, transfer volume — the Fig. 10 substrate).
#include <gtest/gtest.h>

#include "hv/hypervisor.h"
#include "hv/live_migration.h"
#include "hv/machine.h"

namespace mig::hv {
namespace {

TEST(Hypervisor, VEpcFirstTouchChargesEptViolation) {
  World world;
  Machine& m = world.add_machine("m0");
  Vm vm(VmConfig{}, DirtyModel{});
  m.hypervisor().attach_vm(vm, 1024);
  world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
    EXPECT_EQ(m.hypervisor().hypercall_vepc_size(ctx, vm), 1024u);
    uint64_t before = ctx.now();
    m.hypervisor().touch_vepc_page(ctx, vm, 0);
    uint64_t first = ctx.now() - before;
    before = ctx.now();
    m.hypervisor().touch_vepc_page(ctx, vm, 0);  // already mapped: free
    EXPECT_EQ(ctx.now() - before, 0u);
    EXPECT_GT(first, 0u);
    EXPECT_EQ(m.hypervisor().vepc(vm).ept_violations, 1u);
  });
  ASSERT_TRUE(world.executor().run());
}

TEST(LiveMigration, PlainVmMigratesWithPaperLikeNumbers) {
  World world;
  auto channel = world.make_channel();
  Vm src(VmConfig{}, DirtyModel{});
  Vm dst(VmConfig{}, DirtyModel{});
  dst.set_running(false);
  LiveMigrationEngine engine(world.cost(), MigrationParams{});

  Result<MigrationReport> src_report = Error(ErrorCode::kInternal, "unset");
  world.executor().spawn("qemu-src", [&](sim::ThreadCtx& ctx) {
    src_report = engine.migrate_source(ctx, src, channel->a());
  });
  world.executor().spawn("qemu-dst", [&](sim::ThreadCtx& ctx) {
    auto r = engine.migrate_target(ctx, dst, channel->b());
    EXPECT_TRUE(r.ok());
  });
  ASSERT_TRUE(world.executor().run());

  ASSERT_TRUE(src_report.ok());
  const MigrationReport& r = *src_report;
  EXPECT_TRUE(r.success);
  EXPECT_FALSE(src.running());
  EXPECT_TRUE(dst.running());
  // Paper-scale numbers for a 2 GB guest: total tens of seconds, downtime
  // single-digit to low-double-digit ms, ~1 GB transferred.
  EXPECT_GT(r.total_ns, 10e9);
  EXPECT_LT(r.total_ns, 60e9);
  EXPECT_GT(r.downtime_ns, 1e6);
  EXPECT_LT(r.downtime_ns, 20e6);
  EXPECT_GT(r.transferred_bytes, 800ull << 20);
  EXPECT_LT(r.transferred_bytes, 1500ull << 20);
  EXPECT_GE(r.rounds, 2u);
}

TEST(LiveMigration, HigherDirtyRateMeansMoreRoundsAndTraffic) {
  auto run = [](uint64_t pages_per_sec) {
    World world;
    auto channel = world.make_channel();
    DirtyModel dm;
    dm.pages_per_sec = pages_per_sec;
    Vm src(VmConfig{}, dm);
    Vm dst(VmConfig{}, dm);
    LiveMigrationEngine engine(world.cost(), MigrationParams{});
    Result<MigrationReport> report = Error(ErrorCode::kInternal, "unset");
    world.executor().spawn("src", [&](sim::ThreadCtx& ctx) {
      report = engine.migrate_source(ctx, src, channel->a());
    });
    world.executor().spawn("dst", [&](sim::ThreadCtx& ctx) {
      (void)engine.migrate_target(ctx, dst, channel->b());
    });
    EXPECT_TRUE(world.executor().run());
    EXPECT_TRUE(report.ok());
    return *report;
  };
  MigrationReport calm = run(200);
  MigrationReport busy = run(8'000);
  EXPECT_LT(calm.rounds, busy.rounds);
  EXPECT_LT(calm.transferred_bytes, busy.transferred_bytes);
}

TEST(LiveMigration, NonConvergentGuestStillStopsAfterMaxRounds) {
  World world;
  auto channel = world.make_channel();
  DirtyModel dm;
  dm.pages_per_sec = 2'000'000;  // dirties faster than the link drains
  dm.working_set_pages = 100'000;
  Vm src(VmConfig{}, dm);
  Vm dst(VmConfig{}, dm);
  MigrationParams params;
  params.max_rounds = 5;
  LiveMigrationEngine engine(world.cost(), params);
  Result<MigrationReport> report = Error(ErrorCode::kInternal, "unset");
  world.executor().spawn("src", [&](sim::ThreadCtx& ctx) {
    report = engine.migrate_source(ctx, src, channel->a());
  });
  world.executor().spawn("dst", [&](sim::ThreadCtx& ctx) {
    (void)engine.migrate_target(ctx, dst, channel->b());
  });
  ASSERT_TRUE(world.executor().run());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->success);
  EXPECT_EQ(report->rounds, 5u);
  // Forced stop-and-copy of a big dirty set: downtime blows up. This is the
  // classic pre-copy failure mode, reproduced on purpose.
  EXPECT_GT(report->downtime_ns, 100e6);
}

}  // namespace
}  // namespace mig::hv
