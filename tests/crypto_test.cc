// Crypto primitives validated against published test vectors (FIPS 180-4,
// RFC 2104/4231, RFC 8439, FIPS 46-3, FIPS 197) plus structural tests for
// BigNum, DH, Schnorr signatures and the checkpoint sealer.
#include <gtest/gtest.h>

#include "crypto/aead.h"
#include "crypto/bignum.h"
#include "crypto/ciphers.h"
#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace mig::crypto {
namespace {

// ---------------------------------------------------------------- SHA-256

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(hex_encode(Sha256::hash(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex_encode(Sha256::hash(to_bytes(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex_encode(Sha256::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(hex_encode(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  Bytes data = Drbg(to_bytes("seed")).generate(10'000);
  Sha256 ctx;
  // Uneven chunking exercises the buffer boundary logic.
  size_t off = 0;
  for (size_t n : {1u, 63u, 64u, 65u, 255u, 1000u}) {
    ctx.update(ByteSpan(data).subspan(off, n));
    off += n;
  }
  ctx.update(ByteSpan(data).subspan(off));
  EXPECT_EQ(ctx.finish(), Sha256::hash(data));
}

// ------------------------------------------------------------------- HMAC

TEST(Hmac, Rfc4231Vector1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(hex_encode(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Vector2) {
  EXPECT_EQ(
      hex_encode(hmac_sha256(to_bytes("Jefe"),
                             to_bytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231LongKey) {
  Bytes key(131, 0xaa);
  EXPECT_EQ(hex_encode(hmac_sha256(
                key, to_bytes("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hkdf, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = hex_decode("000102030405060708090a0b0c");
  Bytes info = hex_decode("f0f1f2f3f4f5f6f7f8f9");
  Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(hex_encode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(CtEqual, Behaviour) {
  EXPECT_TRUE(ct_equal(to_bytes("abc"), to_bytes("abc")));
  EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("abd")));
  EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("ab")));
}

// --------------------------------------------------------------- ChaCha20

TEST(ChaCha20, Rfc8439Vector) {
  Bytes key = hex_decode(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes nonce = hex_decode("000000000000004a00000000");
  Bytes plaintext = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.");
  Bytes buf = plaintext;
  chacha20_xor(key, nonce, 1, buf);
  EXPECT_EQ(hex_encode(ByteSpan(buf).first(16)),
            "6e2e359a2568f98041ba0728dd0d6981");
  chacha20_xor(key, nonce, 1, buf);  // involution
  EXPECT_EQ(buf, plaintext);
}

// --------------------------------------------------------------------- RC4

TEST(Rc4, KnownVectors) {
  // Classic "Key"/"Plaintext" vector.
  Bytes out = rc4_apply(to_bytes("Key"), to_bytes("Plaintext"));
  EXPECT_EQ(hex_encode(out), "bbf316e8d940af0ad3");
  out = rc4_apply(to_bytes("Wiki"), to_bytes("pedia"));
  EXPECT_EQ(hex_encode(out), "1021bf0420");
}

TEST(Rc4, RoundTrip) {
  Bytes data = Drbg(to_bytes("rc4")).generate(1000);
  Bytes ct = rc4_apply(to_bytes("some key"), data);
  EXPECT_NE(ct, data);
  EXPECT_EQ(rc4_apply(to_bytes("some key"), ct), data);
}

// --------------------------------------------------------------------- DES

TEST(Des, Fips46Vector) {
  // Well-known vector: key 133457799BBCDFF1, plaintext 0123456789ABCDEF.
  Bytes key = hex_decode("133457799bbcdff1");
  Bytes pt = hex_decode("0123456789abcdef");
  uint8_t out[8];
  Des des(key);
  des.encrypt_block(pt.data(), out);
  EXPECT_EQ(hex_encode(ByteSpan(out, 8)), "85e813540f0ab405");
  uint8_t back[8];
  des.decrypt_block(out, back);
  EXPECT_EQ(hex_encode(ByteSpan(back, 8)), "0123456789abcdef");
}

TEST(Des, CbcRoundTripVariousLengths) {
  Bytes key = hex_decode("0123456789abcdef");
  for (size_t len : {0u, 1u, 7u, 8u, 9u, 100u, 4096u}) {
    Bytes pt = Drbg(to_bytes("des")).generate(len);
    Bytes ct = des_cbc_encrypt(key, pt);
    EXPECT_EQ(ct.size() % 8, 0u);
    EXPECT_EQ(des_cbc_decrypt(key, ct), pt) << "len=" << len;
  }
}

// ----------------------------------------------------------------- AES-128

TEST(Aes128, Fips197Vector) {
  Bytes key = hex_decode("000102030405060708090a0b0c0d0e0f");
  Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  uint8_t out[16];
  Aes128 aes(key);
  aes.encrypt_block(pt.data(), out);
  EXPECT_EQ(hex_encode(ByteSpan(out, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  uint8_t back[16];
  aes.decrypt_block(out, back);
  EXPECT_EQ(hex_encode(ByteSpan(back, 16)), hex_encode(pt));
}

TEST(Aes128, NistSp800_38aCbcVector) {
  Bytes key = hex_decode("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes iv = hex_decode("000102030405060708090a0b0c0d0e0f");
  Bytes pt = hex_decode("6bc1bee22e409f96e93d7e117393172a");
  Bytes ct = aes128_cbc_encrypt(key, iv, pt);
  // First block must match the SP 800-38A CBC-AES128 vector.
  EXPECT_EQ(hex_encode(ByteSpan(ct).first(16)),
            "7649abac8119b246cee98e9b12e9197d");
  EXPECT_EQ(aes128_cbc_decrypt(key, iv, ct), pt);
}

TEST(Aes128, CbcRoundTripVariousLengths) {
  Bytes key = hex_decode("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes iv(16, 0x42);
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 1000u}) {
    Bytes pt = Drbg(to_bytes("aes")).generate(len);
    Bytes ct = aes128_cbc_encrypt(key, iv, pt);
    EXPECT_EQ(aes128_cbc_decrypt(key, iv, ct), pt) << "len=" << len;
  }
}

// ------------------------------------------------------------------ BigNum

TEST(BigNum, BytesRoundTrip) {
  Bytes be = hex_decode("0123456789abcdef00ff");
  BigNum n = BigNum::from_bytes(be);
  EXPECT_EQ(hex_encode(n.to_bytes()), "0123456789abcdef00ff");
}

TEST(BigNum, Arithmetic) {
  BigNum a(0xffffffffffffffffULL);
  BigNum b(1);
  EXPECT_EQ(hex_encode((a + b).to_bytes()), "010000000000000000");
  EXPECT_EQ((a + b) - b, a);
  BigNum c(0x100000000ULL);
  EXPECT_EQ(hex_encode((c * c).to_bytes()), "010000000000000000");
}

TEST(BigNum, DivMod) {
  BigNum a = BigNum::from_hex("123456789abcdef0123456789abcdef0");
  BigNum b = BigNum::from_hex("fedcba987654321");
  auto [q, r] = BigNum::divmod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_TRUE(r < b);
}

TEST(BigNum, DivModStress) {
  Drbg rng(to_bytes("divmod"));
  for (int i = 0; i < 200; ++i) {
    size_t alen = 1 + rng.generate_u64() % 64;
    size_t blen = 1 + rng.generate_u64() % alen;
    BigNum a = BigNum::from_bytes(rng.generate(alen));
    BigNum b = BigNum::from_bytes(rng.generate(blen));
    if (b.is_zero()) continue;
    auto [q, r] = BigNum::divmod(a, b);
    EXPECT_EQ(q * b + r, a) << "iteration " << i;
    EXPECT_TRUE(r < b) << "iteration " << i;
  }
}

TEST(BigNum, ModExp) {
  // 3^200 mod 1000 = 209 (3^200 ends in ...209: verified by repeated squaring)
  BigNum base(3), exp(200), mod(1000);
  BigNum expect(1);
  for (int i = 0; i < 200; ++i) expect = (expect * base) % mod;
  EXPECT_EQ(base.modexp(exp, mod), expect);
  // Fermat: a^(p-1) = 1 mod p for prime p.
  BigNum p(1000003);
  EXPECT_EQ(BigNum(12345).modexp(p - BigNum(1), p), BigNum(1));
}

TEST(BigNum, ShiftRoundTrip) {
  BigNum a = BigNum::from_hex("deadbeefcafebabe12345678");
  EXPECT_EQ(a.shifted_left(17).shifted_right(17), a);
  EXPECT_EQ(a.shifted_left(64).shifted_right(64), a);
}

// ---------------------------------------------------------------------- DH

TEST(Dh, SharedSecretAgrees) {
  Drbg rng_a(to_bytes("alice")), rng_b(to_bytes("bob"));
  DhKeyPair a = dh_generate(rng_a);
  DhKeyPair b = dh_generate(rng_b);
  auto s_ab = dh_shared(a.priv, b.pub);
  auto s_ba = dh_shared(b.priv, a.pub);
  ASSERT_TRUE(s_ab.ok());
  ASSERT_TRUE(s_ba.ok());
  EXPECT_EQ(*s_ab, *s_ba);
  EXPECT_EQ(s_ab->size(), DhGroup::oakley2().byte_len);
}

TEST(Dh, DistinctKeysDistinctSecrets) {
  Drbg rng(to_bytes("x"));
  DhKeyPair a = dh_generate(rng);
  DhKeyPair b = dh_generate(rng);
  DhKeyPair c = dh_generate(rng);
  EXPECT_NE(*dh_shared(a.priv, b.pub), *dh_shared(a.priv, c.pub));
}

TEST(Dh, RejectsDegeneratePublicValues) {
  Drbg rng(to_bytes("y"));
  DhKeyPair a = dh_generate(rng);
  EXPECT_FALSE(dh_shared(a.priv, BigNum(0)).ok());
  EXPECT_FALSE(dh_shared(a.priv, BigNum(1)).ok());
  const auto& g = DhGroup::oakley2();
  EXPECT_FALSE(dh_shared(a.priv, g.p - BigNum(1)).ok());
  EXPECT_FALSE(dh_shared(a.priv, g.p + BigNum(5)).ok());
}

// ----------------------------------------------------------------- Schnorr

TEST(Schnorr, SignVerify) {
  Drbg rng(to_bytes("signer"));
  SigKeyPair kp = sig_keygen(rng);
  Bytes msg = to_bytes("attestation quote payload");
  Bytes sig = sig_sign(kp.sk, msg, rng);
  EXPECT_TRUE(sig_verify(kp.pk, msg, sig));
}

TEST(Schnorr, RejectsTamperedMessage) {
  Drbg rng(to_bytes("signer2"));
  SigKeyPair kp = sig_keygen(rng);
  Bytes msg = to_bytes("original message");
  Bytes sig = sig_sign(kp.sk, msg, rng);
  Bytes other = to_bytes("originaX message");
  EXPECT_FALSE(sig_verify(kp.pk, other, sig));
}

TEST(Schnorr, RejectsTamperedSignatureAndWrongKey) {
  Drbg rng(to_bytes("signer3"));
  SigKeyPair kp = sig_keygen(rng);
  SigKeyPair other = sig_keygen(rng);
  Bytes msg = to_bytes("msg");
  Bytes sig = sig_sign(kp.sk, msg, rng);
  EXPECT_FALSE(sig_verify(other.pk, msg, sig));
  Bytes bad = sig;
  bad[10] ^= 1;
  EXPECT_FALSE(sig_verify(kp.pk, msg, bad));
  EXPECT_FALSE(sig_verify(kp.pk, msg, to_bytes("garbage")));
}

// -------------------------------------------------------------------- DRBG

TEST(Drbg, DeterministicAndForkIndependent) {
  Drbg a(to_bytes("seed")), b(to_bytes("seed"));
  EXPECT_EQ(a.generate(100), b.generate(100));
  Drbg c(to_bytes("other"));
  EXPECT_NE(Drbg(to_bytes("seed")).generate(100), c.generate(100));
  Drbg parent(to_bytes("p"));
  Drbg f1 = parent.fork(to_bytes("one"));
  Drbg f2 = parent.fork(to_bytes("one"));  // parent state advanced: different
  EXPECT_NE(f1.generate(32), f2.generate(32));
}

// ---------------------------------------------------------- sealed blobs

class AeadAllCiphers : public ::testing::TestWithParam<CipherAlg> {};

TEST_P(AeadAllCiphers, SealOpenRoundTrip) {
  Bytes key = Drbg(to_bytes("k")).generate(32);
  for (size_t len : {0u, 1u, 100u, 4096u, 20u * 1024u}) {
    Bytes pt = Drbg(to_bytes("pt")).generate(len);
    Bytes sealed = seal(GetParam(), key, pt);
    auto opened = open(key, sealed);
    ASSERT_TRUE(opened.ok()) << cipher_name(GetParam()) << " len=" << len;
    EXPECT_EQ(*opened, pt);
  }
}

TEST_P(AeadAllCiphers, AnyBitFlipDetected) {
  Bytes key = Drbg(to_bytes("k")).generate(32);
  Bytes pt = Drbg(to_bytes("pt")).generate(256);
  Bytes sealed = seal(GetParam(), key, pt);
  // Flip a byte in every region: header, ciphertext, tag.
  for (size_t pos : {0ul, sealed.size() / 2, sealed.size() - 1}) {
    Bytes bad = sealed;
    bad[pos] ^= 0x01;
    EXPECT_FALSE(open(key, bad).ok()) << "pos=" << pos;
  }
}

TEST_P(AeadAllCiphers, WrongKeyFails) {
  Bytes key = Drbg(to_bytes("k")).generate(32);
  Bytes key2 = Drbg(to_bytes("k2")).generate(32);
  Bytes sealed = seal(GetParam(), key, to_bytes("secret"));
  EXPECT_FALSE(open(key2, sealed).ok());
}

TEST_P(AeadAllCiphers, CiphertextHidesPlaintext) {
  Bytes key = Drbg(to_bytes("k")).generate(32);
  Bytes pt = to_bytes("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA");
  Bytes sealed = seal(GetParam(), key, pt);
  // The plaintext must not appear in the sealed blob.
  auto it = std::search(sealed.begin(), sealed.end(), pt.begin(), pt.end());
  EXPECT_EQ(it, sealed.end());
}

INSTANTIATE_TEST_SUITE_P(
    Ciphers, AeadAllCiphers,
    ::testing::Values(CipherAlg::kRc4, CipherAlg::kDesCbc,
                      CipherAlg::kAes128Cbc, CipherAlg::kAes128CbcNi,
                      CipherAlg::kChaCha20),
    [](const auto& info) {
      std::string n = cipher_name(info.param);
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST(Aead, CostModelMatchesPaperCalibration) {
  // §VIII-B: encrypting a 20 KB checkpoint takes ~200 us with RC4 and
  // ~300 us with DES.
  EXPECT_NEAR(cipher_cost_ns(CipherAlg::kRc4, 20 * 1024) / 1000.0, 200.0, 25.0);
  EXPECT_NEAR(cipher_cost_ns(CipherAlg::kDesCbc, 20 * 1024) / 1000.0, 300.0, 35.0);
  // AES-NI is at least 5x faster than RC4.
  EXPECT_LT(cipher_cost_ns(CipherAlg::kAes128CbcNi, 1 << 20) * 5,
            cipher_cost_ns(CipherAlg::kRc4, 1 << 20));
}

}  // namespace
}  // namespace mig::crypto
