// Quorum-replicated counter service (src/quorum/): attested membership,
// two-phase f+1 grants, Merkle audit logs, and Byzantine fault injection.
//
//  * Round trips: cold migration against 3 replicas behaves exactly like the
//    single signer (counter semantics via the shared CounterCore), and the
//    whole run is deterministic under identical seeds.
//  * Fault tolerance: with any f of 2f+1 replicas crashed, partitioned
//    (FaultPlan sever), or crashing mid-commit, migrations still complete.
//  * Byzantine exclusion: an equivocating replica (two signed roots for one
//    log size) is caught by the coordinator's root cross-check, excluded,
//    and flight-recorded by name; a stale replica's validly-signed minority
//    record never joins the envelope.
//  * Fail closed: losing f+1 replicas yields no reply, no counter advance
//    anywhere, and a flight record naming the silent replicas.
//  * Rollback defense unchanged: OPENGRANT still consumes the epoch and a
//    committed live migration still kills pre-migration snapshots — now by
//    quorum refusal.
//  * Anti-downgrade: a quorum-pinned enclave rejects a single-signer grant.
//  * Wire negatives: hostile QMB1/MGQ1 blobs are rejected with a reason.
#include <gtest/gtest.h>

#include "crypto/merkle.h"
#include "guestos/guest_os.h"
#include "hv/machine.h"
#include "migration/owner.h"
#include "migration/session.h"
#include "obs/flight_recorder.h"
#include "quorum/quorum.h"
#include "sdk/builder.h"
#include "sdk/chunk_wire.h"
#include "sdk/host.h"
#include "sim/fault.h"
#include "store/counter_service.h"
#include "store/snapshot_store.h"
#include "util/serde.h"

namespace mig {
namespace {

constexpr uint64_t kEcallBump = 1;
constexpr uint64_t kEcallSum = 2;

std::shared_ptr<sdk::EnclaveProgram> make_prog() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("quorum-counter");
  prog->add_ecall(kEcallBump, "bump", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t delta = r.u64();
    uint64_t steps = r.u64();
    while (f.pc() < steps) {
      env.work(100'000);
      f.step();
    }
    uint64_t off = env.layout().data_off;
    env.write_u64(off, env.read_u64(off) + delta);
    return OkStatus();
  });
  prog->add_ecall(kEcallSum, "sum", [](sdk::EnclaveEnv& env, sdk::Frame&) {
    Writer w;
    w.u64(env.read_u64(env.layout().data_off));
    env.set_retval(w.take());
    return OkStatus();
  });
  return prog;
}

// StoreBed with the quorum service behind the CounterBackend seam: the
// enclave image pins the membership set (config blob 4) instead of a single
// service key.
struct QuorumBed {
  hv::World world{4};
  hv::Machine* source = &world.add_machine("src");
  hv::Machine* target = &world.add_machine("dst");
  hv::Vm vm{hv::VmConfig{}, hv::DirtyModel{}};
  guestos::GuestOs guest{*source, vm};
  guestos::Process* process = &guest.create_process("app");
  crypto::Drbg rng{to_bytes("quorum")};
  crypto::SigKeyPair signer = [] {
    crypto::Drbg r(to_bytes("dev"));
    return crypto::sig_keygen(r);
  }();
  migration::EnclaveOwner owner{world.ias(), crypto::Drbg(to_bytes("own"))};
  quorum::QuorumCounterService counters{world.executor(), world.ias(),
                                        crypto::Drbg(to_bytes("qrm")), 3};
  store::SealedSnapshotStore snapshots;
  migration::EnclaveMigrator migrator{world};

  std::unique_ptr<sdk::EnclaveHost> make_host(uint64_t workers) {
    sdk::BuildInput in;
    in.program = make_prog();
    in.layout.num_workers = workers;
    in.quorum_membership = counters.membership_blob();
    sdk::BuildOutput built =
        sdk::build_enclave_image(in, signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    return std::make_unique<sdk::EnclaveHost>(guest, *process,
                                              std::move(built), world.ias(),
                                              rng.fork(to_bytes("h")));
  }

  migration::EnclaveMigrateOptions opts() {
    migration::EnclaveMigrateOptions o;
    o.counter_service = &counters;
    return o;
  }

  void provision(sim::ThreadCtx& ctx, sdk::EnclaveHost& host) {
    auto ch = world.make_channel();
    world.executor().spawn("owner", [this, c = ch.get()](sim::ThreadCtx& t) {
      owner.serve_one(t, c->b());
    });
    sdk::ControlCmd cmd;
    cmd.type = sdk::ControlCmd::Type::kProvision;
    cmd.channel = ch->a();
    ASSERT_TRUE(host.mailbox().post(ctx, cmd).status.ok());
  }

  Status bump(sim::ThreadCtx& ctx, sdk::EnclaveHost& host, uint64_t delta) {
    Writer w;
    w.u64(delta);
    w.u64(2);
    return host.ecall(ctx, 0, kEcallBump, w.data()).status();
  }

  uint64_t sum(sim::ThreadCtx& ctx, sdk::EnclaveHost& host) {
    auto got = host.ecall(ctx, 0, kEcallSum, {});
    if (!got.ok()) return ~0ull;
    Reader r(*got);
    return r.u64();
  }

  Status live_migrate(sim::ThreadCtx& ctx, sdk::EnclaveHost& host,
                      hv::Machine& from, hv::Machine& to) {
    auto blob = migrator.prepare(ctx, host, opts());
    MIG_RETURN_IF_ERROR(blob.status());
    auto inst = host.detach_instance();
    guest.set_migration_target(to);
    MIG_RETURN_IF_ERROR(guest.resume_enclaves_after_migration(ctx).status());
    return migrator.restore(ctx, host, from, inst, std::move(*blob), opts());
  }
};

// ---- Merkle tree unit coverage ----------------------------------------------

TEST(MerkleTree, InclusionProofsVerifyAtEverySizeAndIndex) {
  crypto::MerkleTree tree;
  std::vector<Bytes> leaves;
  for (uint64_t n = 1; n <= 17; ++n) {
    leaves.push_back(to_bytes("leaf-" + std::to_string(n)));
    tree.append(leaves.back());
    ASSERT_EQ(tree.size(), n);
    for (uint64_t i = 0; i < n; ++i) {
      auto proof = tree.prove(i);
      EXPECT_TRUE(crypto::merkle_verify_inclusion(
          crypto::merkle_leaf_hash(leaves[i]), i, n, proof, tree.root()))
          << "size " << n << " index " << i;
      // A proof for one position never verifies another leaf.
      EXPECT_FALSE(crypto::merkle_verify_inclusion(
          crypto::merkle_leaf_hash(to_bytes("forged")), i, n, proof,
          tree.root()));
    }
  }
}

TEST(MerkleTree, RootChangesWithEveryAppendAndTamperedProofFails) {
  crypto::MerkleTree tree;
  std::set<std::string> roots;
  for (int i = 0; i < 9; ++i) {
    tree.append(to_bytes("entry-" + std::to_string(i)));
    crypto::Digest root = tree.root();
    roots.insert(std::string(root.begin(), root.end()));
  }
  EXPECT_EQ(roots.size(), 9u);  // linear history: every prefix has its root
  auto proof = tree.prove(4);
  ASSERT_FALSE(proof.empty());
  proof[0][0] ^= 1;
  EXPECT_FALSE(crypto::merkle_verify_inclusion(
      crypto::merkle_leaf_hash(to_bytes("entry-4")), 4, tree.size(), proof,
      tree.root()));
}

// ---- round trips -------------------------------------------------------------

struct QuorumColdRun {
  uint64_t sum = 0;
  uint64_t end_ns = 0;
  std::vector<uint64_t> counters;
  std::vector<uint64_t> log_sizes;
  bool on_target = false;
};

QuorumColdRun run_quorum_cold_migration() {
  QuorumBed bed;
  auto host = bed.make_host(2);
  crypto::Digest mre = host->image().measure();
  QuorumColdRun out;
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    ASSERT_TRUE(bed.bump(ctx, *host, 5).ok());
    ASSERT_TRUE(bed.bump(ctx, *host, 7).ok());
    auto id = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                             bed.opts());
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    ASSERT_TRUE(host->destroy(ctx).ok());
    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    auto st = bed.migrator.restore_from_store(ctx, *host, bed.snapshots, *id,
                                              bed.opts());
    ASSERT_TRUE(st.ok()) << st.to_string();
    out.on_target = host->instance() != nullptr &&
                    host->instance()->machine == bed.target;
    EXPECT_EQ(bed.sum(ctx, *host), 12u);
    ASSERT_TRUE(bed.bump(ctx, *host, 1).ok());
    out.sum = bed.sum(ctx, *host);
    out.end_ns = ctx.now();
  });
  EXPECT_TRUE(bed.world.executor().run());
  for (size_t i = 0; i < bed.counters.num_replicas(); ++i) {
    out.counters.push_back(bed.counters.replica(i).counter(mre));
    out.log_sizes.push_back(bed.counters.replica(i).log_size());
  }
  return out;
}

TEST(QuorumColdMigration, RoundTripMatchesSingleSignerSemantics) {
  QuorumColdRun r = run_quorum_cold_migration();
  EXPECT_TRUE(r.on_target);
  EXPECT_EQ(r.sum, 13u);
  // Snapshot at c=1, OPENGRANT consumed it: every replica agrees on 2, and
  // every replica logged both ops (linear, identical histories).
  EXPECT_EQ(r.counters, (std::vector<uint64_t>{2, 2, 2}));
  EXPECT_EQ(r.log_sizes, (std::vector<uint64_t>{2, 2, 2}));
}

TEST(QuorumColdMigration, DeterministicUnderIdenticalSeeds) {
  QuorumColdRun a = run_quorum_cold_migration();
  QuorumColdRun b = run_quorum_cold_migration();
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.end_ns, b.end_ns);
}

// ---- fault tolerance: f of 2f+1 may fail ------------------------------------

TEST(QuorumFaults, MigrationCompletesWithOneCrashedReplica) {
  QuorumBed bed;
  auto host = bed.make_host(2);
  crypto::Digest mre = host->image().measure();
  bed.counters.replica(2).set_available(false);  // down before first contact
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    ASSERT_TRUE(bed.bump(ctx, *host, 42).ok());
    auto id = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                             bed.opts());
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    host->crash_instance(ctx);
    Status st = bed.migrator.restore_from_store(ctx, *host, bed.snapshots,
                                                *id, bed.opts());
    ASSERT_TRUE(st.ok()) << st.to_string();
    EXPECT_EQ(bed.sum(ctx, *host), 42u);
  });
  ASSERT_TRUE(bed.world.executor().run());
  // The two live replicas served and logged; the crashed one never moved.
  EXPECT_EQ(bed.counters.replica(0).counter(mre), 2u);
  EXPECT_EQ(bed.counters.replica(1).counter(mre), 2u);
  EXPECT_EQ(bed.counters.replica(2).counter(mre), 1u);
  EXPECT_EQ(bed.counters.replica(2).log_size(), 0u);
}

TEST(QuorumFaults, MigrationCompletesWithOnePartitionedReplica) {
  QuorumBed bed;
  auto host = bed.make_host(2);
  // Partition replica 1 from the coordinator before any traffic: every
  // message to it is lost from the first send on.
  sim::FaultPlan plan;
  plan.sever_at_message(1);
  plan.install(bed.counters.pipe_to_replica(0));
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    ASSERT_TRUE(bed.bump(ctx, *host, 6).ok());
    auto mig = bed.live_migrate(ctx, *host, *bed.source, *bed.target);
    ASSERT_TRUE(mig.ok()) << mig.to_string();
    EXPECT_EQ(bed.sum(ctx, *host), 6u);
  });
  ASSERT_TRUE(bed.world.executor().run());
}

TEST(QuorumFaults, CrashMidAdvanceLeavesAPrefixLogAndMigrationCompletes) {
  QuorumBed bed;
  auto host = bed.make_host(2);
  crypto::Digest mre = host->image().measure();
  obs::flightrec().clear();
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    ASSERT_TRUE(bed.bump(ctx, *host, 3).ok());
    // One committed op first, so the crashed replica's log is a non-empty
    // strict prefix of the survivors'.
    auto id = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                             bed.opts());
    ASSERT_TRUE(id.ok());
    bed.counters.replica(1).set_crash_at_commit(true);
    // The live migration's commit posts ADVANCE; replica 2 dies at that
    // commit, the other two grant — f+1 is enough.
    auto mig = bed.live_migrate(ctx, *host, *bed.source, *bed.target);
    ASSERT_TRUE(mig.ok()) << mig.to_string();
  });
  ASSERT_TRUE(bed.world.executor().run());
  EXPECT_EQ(bed.counters.replica(0).counter(mre), 2u);
  EXPECT_EQ(bed.counters.replica(2).counter(mre), 2u);
  EXPECT_EQ(bed.counters.replica(1).counter(mre), 1u);  // died before apply
  EXPECT_EQ(bed.counters.replica(0).log_size(), 2u);
  EXPECT_EQ(bed.counters.replica(1).log_size(), 1u);  // strict prefix
  EXPECT_TRUE(obs::flightrec().contains("crashed mid-ADVANCE"));
}

// ---- Byzantine replicas ------------------------------------------------------

TEST(QuorumByzantine, EquivocatorIsExcludedAndFlightRecordedByName) {
  QuorumBed bed;
  auto host = bed.make_host(2);
  obs::flightrec().clear();
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    ASSERT_TRUE(bed.bump(ctx, *host, 8).ok());
    // An honest op first pins replica 3's true root for its log size.
    auto id = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                             bed.opts());
    ASSERT_TRUE(id.ok());
    bed.counters.replica(2).set_equivocate(true);
    // Now it signs a different root for the same (frozen) log size on every
    // reply: the coordinator's cross-check catches the conflict.
    host->crash_instance(ctx);
    Status st = bed.migrator.restore_from_store(ctx, *host, bed.snapshots,
                                                *id, bed.opts());
    ASSERT_TRUE(st.ok()) << st.to_string();
    EXPECT_EQ(bed.sum(ctx, *host), 8u);
  });
  ASSERT_TRUE(bed.world.executor().run());
  EXPECT_TRUE(bed.counters.excluded().count(3) == 1);
  EXPECT_TRUE(obs::flightrec().contains("equivocation")) << "no flight record";
  EXPECT_TRUE(obs::flightrec().contains("replica 3"));
}

TEST(QuorumByzantine, StaleReplicaNeverJoinsTheEnvelope) {
  QuorumBed bed;
  auto host = bed.make_host(2);
  crypto::Digest mre = host->image().measure();
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    ASSERT_TRUE(bed.bump(ctx, *host, 4).ok());
    auto id = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                             bed.opts());
    ASSERT_TRUE(id.ok());
    bed.counters.replica(0).set_stale(true);
    // The stale replica acks prepares but never applies: its signed records
    // report the old counter and can never match the f+1 honest ones.
    host->crash_instance(ctx);
    Status st = bed.migrator.restore_from_store(ctx, *host, bed.snapshots,
                                                *id, bed.opts());
    ASSERT_TRUE(st.ok()) << st.to_string();
    EXPECT_EQ(bed.sum(ctx, *host), 4u);
  });
  ASSERT_TRUE(bed.world.executor().run());
  EXPECT_EQ(bed.counters.replica(0).counter(mre), 1u);  // never applied
  EXPECT_EQ(bed.counters.replica(1).counter(mre), 2u);
  EXPECT_EQ(bed.counters.replica(2).counter(mre), 2u);
}

// ---- fail closed: quorum loss ------------------------------------------------

TEST(QuorumFailClosed, QuorumLossYieldsNoReplyAndNoCounterAdvance) {
  QuorumBed bed;
  auto host = bed.make_host(2);
  crypto::Digest mre = host->image().measure();
  obs::flightrec().clear();
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    ASSERT_TRUE(bed.bump(ctx, *host, 2).ok());
    auto id = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                             bed.opts());
    ASSERT_TRUE(id.ok());
    // f+1 replicas down: no quorum can form. The mutating OPENGRANT must
    // fail closed without advancing anything anywhere.
    bed.counters.replica(1).set_available(false);
    bed.counters.replica(2).set_available(false);
    host->crash_instance(ctx);
    Status st = bed.migrator.restore_from_store(ctx, *host, bed.snapshots,
                                                *id, bed.opts());
    EXPECT_EQ(st.code(), ErrorCode::kDeadlineExceeded) << st.to_string();
  });
  ASSERT_TRUE(bed.world.executor().run());
  for (size_t i = 0; i < bed.counters.num_replicas(); ++i)
    EXPECT_EQ(bed.counters.replica(i).counter(mre), 1u) << "replica " << i;
  EXPECT_TRUE(obs::flightrec().contains("quorum unreachable"));
  EXPECT_TRUE(obs::flightrec().contains("replica 2"));
  EXPECT_TRUE(obs::flightrec().contains("replica 3"));
}

// ---- rollback defense through the quorum ------------------------------------

TEST(QuorumRollback, PreMigrationSnapshotDiesWhenLiveMigrationCommits) {
  QuorumBed bed;
  auto host = bed.make_host(2);
  crypto::Digest mre = host->image().measure();
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    ASSERT_TRUE(bed.bump(ctx, *host, 42).ok());
    auto id = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                             bed.opts());
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    EXPECT_EQ(bed.counters.replica(0).counter(mre), 1u);

    auto mig = bed.live_migrate(ctx, *host, *bed.source, *bed.target);
    ASSERT_TRUE(mig.ok()) << mig.to_string();
    EXPECT_EQ(bed.counters.replica(0).counter(mre), 2u);
    EXPECT_EQ(bed.sum(ctx, *host), 42u);

    // Rollback attempt: f+1 replicas refuse the stale OPENGRANT and the
    // coordinator forwards the refusal quorum.
    host->crash_instance(ctx);
    Status st = bed.migrator.restore_from_store(ctx, *host, bed.snapshots,
                                                *id, bed.opts());
    EXPECT_EQ(st.code(), ErrorCode::kPermissionDenied) << st.to_string();
    EXPECT_NE(st.message().find("refused"), std::string::npos)
        << st.message();
    EXPECT_EQ(host->instance(), nullptr);
    EXPECT_EQ(bed.counters.replica(0).counter(mre), 2u);
  });
  ASSERT_TRUE(bed.world.executor().run());
}

// ---- anti-downgrade ----------------------------------------------------------

TEST(QuorumDowngrade, SingleSignerGrantIsRejectedByQuorumPinnedEnclave) {
  QuorumBed bed;
  store::CounterService single{bed.world.ias(), crypto::Drbg(to_bytes("ctr"))};
  auto host = bed.make_host(2);
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    ASSERT_TRUE(bed.bump(ctx, *host, 1).ok());
    // A compromised operator routes the pinned enclave's store traffic to a
    // single-signer service. Its CTRGRANT is well-formed — and rejected.
    migration::EnclaveMigrateOptions o;
    o.counter_service = &single;
    auto id = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots, o);
    EXPECT_EQ(id.status().code(), ErrorCode::kAuthFailure)
        << id.status().to_string();
    EXPECT_NE(id.status().message().find("single-signer"), std::string::npos)
        << id.status().message();
  });
  ASSERT_TRUE(bed.world.executor().run());
}

// ---- audit-leaf codec and torn exports ---------------------------------------

TEST(QuorumAuditLog, TornTailExportParsesAsPrefixPlusGarbage) {
  QuorumBed bed;
  auto host = bed.make_host(2);
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    ASSERT_TRUE(bed.bump(ctx, *host, 1).ok());
    auto id = bed.migrator.snapshot_to_store(ctx, *host, bed.snapshots,
                                             bed.opts());
    ASSERT_TRUE(id.ok());
    host->crash_instance(ctx);
    Status st = bed.migrator.restore_from_store(
        ctx, *host, bed.snapshots, *id, bed.opts());
    ASSERT_TRUE(st.ok()) << st.to_string();
  });
  ASSERT_TRUE(bed.world.executor().run());

  auto clean = bed.counters.replica(0).export_log();
  ASSERT_EQ(clean.leaves.size(), 2u);
  for (const Bytes& leaf : clean.leaves)
    EXPECT_TRUE(quorum::parse_audit_leaf(leaf).ok());
  // Recomputing the tree from exported leaves reproduces the signed root.
  crypto::MerkleTree tree;
  for (const Bytes& leaf : clean.leaves) tree.append(leaf);
  EXPECT_EQ(tree.root(), clean.signed_root);

  bed.counters.replica(0).set_torn_log_tail(true);
  auto torn = bed.counters.replica(0).export_log();
  ASSERT_EQ(torn.leaves.size(), 2u);
  EXPECT_TRUE(quorum::parse_audit_leaf(torn.leaves[0]).ok());
  EXPECT_FALSE(quorum::parse_audit_leaf(torn.leaves[1]).ok());
}

// ---- decoder negatives (hostile wire input) ----------------------------------
// The encoder MIG_CHECKs honest-side invariants (non-empty set, matched
// signature count, odd membership), so hostile variants of those are built
// byte-by-byte with a raw Writer — the parser must refuse them on its own.

sdk::QuorumReplyEnvelope valid_envelope() {
  sdk::QuorumReplyEnvelope env;
  for (uint64_t id = 1; id <= 2; ++id) {
    sdk::QuorumReplyRecord rec;
    rec.replica_id = id;
    rec.counter = 7;
    rec.key_commit = Bytes(32, 0x11);
    rec.tree_size = 3;
    rec.root = Bytes(32, 0x22);
    rec.leaf = to_bytes("leaf");
    rec.proof = {Bytes(32, 0x33), Bytes(32, 0x44)};
    rec.dh_pub_s = Bytes(128, 0x55);
    rec.enc_key = to_bytes("sealed");
    env.records.push_back(std::move(rec));
    env.sigs.push_back(Bytes(64, 0x66));
  }
  return env;
}

// Serializes one well-formed MGQ1 record body (everything between the record
// count and the signature block) so hostile envelopes can reuse it.
void put_reply_record(Writer& w, uint64_t replica_id) {
  w.u64(replica_id);
  w.u64(7);               // counter
  w.raw(Bytes(32, 0x11));  // key_commit
  w.u64(3);               // tree_size
  w.raw(Bytes(32, 0x22));  // root
  w.bytes(to_bytes("leaf"));
  w.u64(2);  // proof_len
  w.raw(Bytes(32, 0x33));
  w.raw(Bytes(32, 0x44));
  w.bytes(Bytes(128, 0x55));    // dh_pub_s
  w.bytes(to_bytes("sealed"));  // enc_key
}

TEST(QuorumWireNegative, RejectsZeroLengthReplySet) {
  // Positive control first: a hand-built 1-record envelope parses, proving
  // the record layout below matches the real wire.
  Writer ok;
  ok.raw(to_bytes("MGQ1"));
  ok.u64(1);
  put_reply_record(ok, 1);
  ok.u64(1);
  ok.bytes(Bytes(64, 0x66));
  ASSERT_TRUE(sdk::parse_quorum_reply(ok.data()).ok());

  Writer w;
  w.raw(to_bytes("MGQ1"));
  w.u64(0);  // zero records: a grant envelope that grants nothing
  w.u64(0);
  auto got = sdk::parse_quorum_reply(w.data());
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("empty reply set"), std::string::npos)
      << got.status().message();
}

TEST(QuorumWireNegative, RejectsDuplicateReplicaId) {
  sdk::QuorumReplyEnvelope env = valid_envelope();
  env.records[1].replica_id = env.records[0].replica_id;
  auto got = sdk::parse_quorum_reply(sdk::encode_quorum_reply(env));
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("duplicate replica id"),
            std::string::npos)
      << got.status().message();
}

TEST(QuorumWireNegative, RejectsSignatureCountOffByOne) {
  // Two records but only one declared signature: a spliced envelope trying
  // to ride a single replica's signature onto a fabricated second record.
  Writer under;
  under.raw(to_bytes("MGQ1"));
  under.u64(2);
  put_reply_record(under, 1);
  put_reply_record(under, 2);
  under.u64(1);
  under.bytes(Bytes(64, 0x66));
  auto got = sdk::parse_quorum_reply(under.data());
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("signature count"), std::string::npos)
      << got.status().message();

  // And one signature MORE than records (a dangling extra signature).
  Writer over;
  over.raw(to_bytes("MGQ1"));
  over.u64(2);
  put_reply_record(over, 1);
  put_reply_record(over, 2);
  over.u64(3);
  for (int i = 0; i < 3; ++i) over.bytes(Bytes(64, 0x66));
  EXPECT_FALSE(sdk::parse_quorum_reply(over.data()).ok());
}

TEST(QuorumWireNegative, RejectsTruncatedMerkleProof) {
  sdk::QuorumReplyEnvelope env = valid_envelope();
  Bytes wire = sdk::encode_quorum_reply(env);
  // Chop the tail off: the last record's proof nodes (and everything after)
  // go missing while the declared lengths stay.
  ASSERT_GT(wire.size(), 96u);
  wire.erase(wire.end() - 96, wire.end());
  auto got = sdk::parse_quorum_reply(wire);
  ASSERT_FALSE(got.ok());
}

TEST(QuorumWireNegative, RejectsCounterZeroAndTrailingBytes) {
  sdk::QuorumReplyEnvelope env = valid_envelope();
  env.records[0].counter = 0;
  auto got = sdk::parse_quorum_reply(sdk::encode_quorum_reply(env));
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("counter 0"), std::string::npos);

  Bytes wire = sdk::encode_quorum_reply(valid_envelope());
  wire.push_back(0xff);
  EXPECT_FALSE(sdk::parse_quorum_reply(wire).ok());
}

TEST(QuorumWireNegative, MembershipRejectsEvenEmptyAndDuplicateSets) {
  // QMB1 member body: u64 id | raw measurement(32) | bytes pk.
  auto put_member = [](Writer& w, uint64_t id) {
    w.u64(id);
    w.raw(Bytes(32, static_cast<uint8_t>(id)));
    w.bytes(Bytes(160, static_cast<uint8_t>(id)));
  };

  // Positive control: a hand-built 3-member set parses.
  Writer ok;
  ok.raw(to_bytes("QMB1"));
  ok.u64(3);
  for (uint64_t id = 1; id <= 3; ++id) put_member(ok, id);
  ASSERT_TRUE(sdk::parse_quorum_membership(ok.data()).ok());

  // 2 members: not 2f+1, no f can make a majority well-defined.
  Writer even;
  even.raw(to_bytes("QMB1"));
  even.u64(2);
  put_member(even, 1);
  put_member(even, 2);
  auto e = sdk::parse_quorum_membership(even.data());
  ASSERT_FALSE(e.ok());
  EXPECT_NE(e.status().message().find("2f+1"), std::string::npos)
      << e.status().message();

  // Zero members: an enclave pinned to nobody would accept anything.
  Writer empty;
  empty.raw(to_bytes("QMB1"));
  empty.u64(0);
  EXPECT_FALSE(sdk::parse_quorum_membership(empty.data()).ok());

  // Duplicate id: one replica counted twice toward f+1.
  Writer dup;
  dup.raw(to_bytes("QMB1"));
  dup.u64(3);
  put_member(dup, 1);
  put_member(dup, 2);
  put_member(dup, 1);
  auto got = sdk::parse_quorum_membership(dup.data());
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("duplicate replica id"),
            std::string::npos)
      << got.status().message();
}

}  // namespace
}  // namespace mig
