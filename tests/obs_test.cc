// Observability layer tests: the JSON reader, the metrics registry, the
// trace recorder, and — most importantly — the end-to-end properties the
// layer promises: a full VM migration produces a valid Chrome trace with
// spans for every pipeline phase, metrics that agree with the engine's
// MigrationReport, byte-identical output across identical seeded runs, and
// injected faults that show up as trace events with matching counters.
#include <gtest/gtest.h>

#include "migration/session.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "util/serde.h"

namespace mig {
namespace {

// ---------------------------------------------------------------------------
// JSON reader.

TEST(ObsJson, ParsesScalarsArraysObjects) {
  auto j = obs::Json::parse(
      R"({"a":1,"b":-2.5,"c":"x\n\"y\"","d":[true,false,null],"e":{}})");
  ASSERT_TRUE(j.ok()) << j.status().to_string();
  ASSERT_TRUE(j->is_object());
  ASSERT_TRUE(j->has("a"));
  EXPECT_TRUE(j->get("a")->is_integer());
  EXPECT_EQ(j->get("a")->as_u64(), 1u);
  EXPECT_DOUBLE_EQ(j->get("b")->as_double(), -2.5);
  EXPECT_FALSE(j->get("b")->is_integer());
  EXPECT_EQ(j->get("c")->as_string(), "x\n\"y\"");
  ASSERT_TRUE(j->get("d")->is_array());
  ASSERT_EQ(j->get("d")->items().size(), 3u);
  EXPECT_TRUE(j->get("d")->items()[0].as_bool());
  EXPECT_TRUE(j->get("d")->items()[2].is_null());
  EXPECT_TRUE(j->get("e")->is_object());
  EXPECT_EQ(j->get("missing"), nullptr);
}

TEST(ObsJson, RoundTripsLargeU64) {
  uint64_t big = 0xFFFF'FFFF'FFFF'FFFFull;
  auto j = obs::Json::parse(std::to_string(big));
  ASSERT_TRUE(j.ok());
  ASSERT_TRUE(j->is_integer());
  EXPECT_EQ(j->as_u64(), big);
}

TEST(ObsJson, DecodesUnicodeEscapes) {
  auto j = obs::Json::parse(R"("Aé")");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->as_string(), "A\xc3\xa9");
}

TEST(ObsJson, RejectsMalformedDocuments) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "1 2", "{\"a\" 1}",
                          "\"unterminated", "[1] trailing"}) {
    auto j = obs::Json::parse(bad);
    EXPECT_FALSE(j.ok()) << "accepted: " << bad;
    EXPECT_EQ(j.status().code(), ErrorCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(ObsMetrics, DisabledRegistryRecordsNothing) {
  obs::ScopedObservation capture;
  obs::metrics().set_enabled(false);
  obs::metrics().add("x.counter", 5);
  obs::metrics().set_gauge("x.gauge", 7);
  obs::metrics().observe("x.hist", 9);
  EXPECT_EQ(obs::metrics().counter("x.counter"), 0u);
  EXPECT_FALSE(obs::metrics().has_gauge("x.gauge"));
  EXPECT_EQ(obs::metrics().histogram("x.hist").count, 0u);
}

TEST(ObsMetrics, CountersGaugesHistograms) {
  obs::ScopedObservation capture;
  obs::metrics().add("c", 2);
  obs::metrics().add("c");
  obs::metrics().set_gauge("g", 10);
  obs::metrics().set_gauge("g", 4);  // gauges overwrite
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 1024ull}) {
    obs::metrics().observe("h", v);
  }
  EXPECT_EQ(obs::metrics().counter("c"), 3u);
  EXPECT_EQ(obs::metrics().gauge("g"), 4u);
  auto h = obs::metrics().histogram("h");
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.sum, 1030u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 1024u);
  EXPECT_EQ(h.buckets[obs::MetricsRegistry::bucket_index(0)], 1u);
  EXPECT_EQ(h.buckets[obs::MetricsRegistry::bucket_index(1024)], 1u);
}

TEST(ObsMetrics, BucketIndexIsLogTwo) {
  using R = obs::MetricsRegistry;
  EXPECT_EQ(R::bucket_index(0), 0u);
  EXPECT_EQ(R::bucket_index(1), 1u);
  EXPECT_EQ(R::bucket_index(2), 2u);
  EXPECT_EQ(R::bucket_index(3), 2u);
  EXPECT_EQ(R::bucket_index(4), 3u);
  // The top bucket boundary: 2^63-1 is the last value in bucket 63; 2^63 and
  // everything above land in the final bucket, so no observation can index
  // out of the array.
  EXPECT_EQ(R::bucket_index((1ull << 63) - 1), 63u);
  EXPECT_EQ(R::bucket_index(1ull << 63), 64u);
  EXPECT_EQ(R::bucket_index(0xFFFF'FFFF'FFFF'FFFFull), R::kBuckets - 1);
  static_assert(R::kBuckets == 65, "one bucket per bit_width value 0..64");
}

TEST(ObsMetrics, JsonDumpParsesAndMatchesQueries) {
  obs::ScopedObservation capture;
  obs::metrics().add("b.count", 41);
  obs::metrics().add("a.count", 1);
  obs::metrics().set_gauge("z.gauge", 123);
  obs::metrics().observe("lat", 700);
  auto j = obs::Json::parse(obs::metrics().json());
  ASSERT_TRUE(j.ok()) << j.status().to_string();
  ASSERT_TRUE(j->has("counters"));
  ASSERT_TRUE(j->has("gauges"));
  ASSERT_TRUE(j->has("histograms"));
  EXPECT_EQ(j->get("counters")->get("a.count")->as_u64(), 1u);
  EXPECT_EQ(j->get("counters")->get("b.count")->as_u64(), 41u);
  EXPECT_EQ(j->get("gauges")->get("z.gauge")->as_u64(), 123u);
  const obs::Json* h = j->get("histograms")->get("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->get("count")->as_u64(), 1u);
  EXPECT_EQ(h->get("sum")->as_u64(), 700u);
}

TEST(ObsMetrics, JsonDumpSortsKeysEscapesNamesAndElidesEmptyBuckets) {
  obs::ScopedObservation capture;
  // Registered out of order; the dump must emit each section sorted by key
  // so identical runs (and the bench regression gate reading them) see
  // byte-identical files regardless of registration order.
  obs::metrics().add("z.last", 3);
  obs::metrics().add("a\"odd\nname\\", 0xFFFF'FFFF'FFFF'FFFFull);
  obs::metrics().add("m.mid", 2);
  obs::metrics().set_gauge("g.two", 2);
  obs::metrics().set_gauge("g.one", 1);
  obs::metrics().observe("h", 5);     // bucket 3
  obs::metrics().observe("h", 5);     // bucket 3 again
  obs::metrics().observe("h", 1024);  // bucket 11

  std::string text = obs::metrics().json();
  EXPECT_LT(text.find("a\\\"odd\\nname\\\\"), text.find("m.mid"));
  EXPECT_LT(text.find("m.mid"), text.find("z.last"));
  EXPECT_LT(text.find("g.one"), text.find("g.two"));

  auto j = obs::Json::parse(text);
  ASSERT_TRUE(j.ok()) << j.status().to_string();
  // The odd name round-trips through the escaping, and the UINT64_MAX value
  // survives as an exact integer.
  const obs::Json* odd = j->get("counters")->get("a\"odd\nname\\");
  ASSERT_NE(odd, nullptr);
  EXPECT_EQ(odd->as_u64(), 0xFFFF'FFFF'FFFF'FFFFull);
  // Only the two populated buckets appear; all 63 empty ones are elided.
  const obs::Json* h = j->get("histograms")->get("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->get("count")->as_u64(), 3u);
  EXPECT_EQ(h->get("sum")->as_u64(), 1034u);
  EXPECT_EQ(h->get("min")->as_u64(), 5u);
  EXPECT_EQ(h->get("max")->as_u64(), 1024u);
  const obs::Json* buckets = h->get("buckets");
  ASSERT_NE(buckets, nullptr);
  EXPECT_EQ(buckets->fields().size(), 2u);
  ASSERT_NE(buckets->get("3"), nullptr);
  EXPECT_EQ(buckets->get("3")->as_u64(), 2u);
  ASSERT_NE(buckets->get("11"), nullptr);
  EXPECT_EQ(buckets->get("11")->as_u64(), 1u);
}

// ---------------------------------------------------------------------------
// Trace recorder with a fake context (no simulator needed).

struct FakeCtx {
  uint64_t t = 0;
  uint32_t tid = 1;
  std::string nm = "fake";
  uint64_t now() const { return t; }
  uint32_t id() const { return tid; }
  const std::string& name() const { return nm; }
};

TEST(ObsTrace, DisabledRecorderRecordsNothing) {
  obs::ScopedObservation capture;
  obs::trace().set_enabled(false);
  FakeCtx ctx;
  {
    obs::Span<FakeCtx> span(ctx, "work", "test");
    obs::instant(ctx, "tick", "test");
  }
  EXPECT_TRUE(obs::trace().events().empty());
}

TEST(ObsTrace, SpansNestAndFillEndNames) {
  obs::ScopedObservation capture;
  FakeCtx ctx;
  {
    obs::Span<FakeCtx> outer(ctx, "outer", "test", {{"k", 7}});
    ctx.t = 1000;
    {
      obs::Span<FakeCtx> inner(ctx, "inner", "test");
      ctx.t = 2500;
    }
    obs::instant(ctx, "mark", "test", {{"what", "midpoint"}});
    ctx.t = 4000;
  }
  const auto& ev = obs::trace().events();
  ASSERT_EQ(ev.size(), 5u);
  EXPECT_EQ(ev[0].ph, 'B');
  EXPECT_EQ(ev[0].name, "outer");
  EXPECT_EQ(ev[1].ph, 'B');
  EXPECT_EQ(ev[1].name, "inner");
  EXPECT_EQ(ev[2].ph, 'E');
  EXPECT_EQ(ev[2].ts_ns, 2500u);
  EXPECT_EQ(ev[3].ph, 'i');
  EXPECT_EQ(ev[4].ph, 'E');
  EXPECT_EQ(obs::trace().span_count("outer"), 1u);
  EXPECT_EQ(obs::trace().instant_count("mark"), 1u);
  EXPECT_TRUE(obs::trace().has_span("inner"));
}

TEST(ObsTrace, EarlyFinishAttachesResultArgs) {
  obs::ScopedObservation capture;
  FakeCtx ctx;
  obs::Span<FakeCtx> span(ctx, "phase", "test");
  ctx.t = 10;
  span.finish({{"bytes", 4096}});
  span.finish();  // double finish is a no-op
  const auto& ev = obs::trace().events();
  ASSERT_EQ(ev.size(), 2u);
  ASSERT_EQ(ev[1].args.size(), 1u);
  EXPECT_EQ(ev[1].args[0].key, "bytes");
  EXPECT_EQ(ev[1].args[0].u64, 4096u);
}

TEST(ObsTrace, ChromeJsonIsValidAndCarriesMetadata) {
  obs::ScopedObservation capture;
  FakeCtx a{.t = 1500, .tid = 3, .nm = "alpha"};
  FakeCtx b{.t = 0, .tid = 2, .nm = "beta"};
  {
    obs::Span<FakeCtx> sa(a, "span \"q\"", "cat", {{"note", "x\\y"}});
    obs::instant(b, "blip", "cat");
    a.t = 2750;
  }
  auto j = obs::Json::parse(obs::trace().chrome_json());
  ASSERT_TRUE(j.ok()) << j.status().to_string();
  const obs::Json* evs = j->get("traceEvents");
  ASSERT_NE(evs, nullptr);
  ASSERT_TRUE(evs->is_array());
  // Metadata first (sorted by tid), then the events in record order.
  size_t meta = 0;
  for (const obs::Json& e : evs->items()) {
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("tid"));
    if (e.get("ph")->as_string() == "M") {
      ++meta;
      EXPECT_EQ(e.get("name")->as_string(), "thread_name");
    } else {
      ASSERT_TRUE(e.has("ts"));
    }
  }
  EXPECT_EQ(meta, 2u);
  EXPECT_EQ(evs->items()[0].get("tid")->as_u64(), 2u);
  EXPECT_EQ(evs->items()[1].get("tid")->as_u64(), 3u);
  // ts is microseconds: 1500 ns => 1.500.
  const obs::Json& begin = evs->items()[2];
  EXPECT_EQ(begin.get("ph")->as_string(), "B");
  EXPECT_DOUBLE_EQ(begin.get("ts")->as_double(), 1.5);
  EXPECT_EQ(begin.get("name")->as_string(), "span \"q\"");
  EXPECT_EQ(begin.get("args")->get("note")->as_string(), "x\\y");
}

// Walks the exported trace and checks stack discipline per tid: every 'E'
// closes an open 'B', timestamps never go backwards on a thread, and no
// span is left open at the end.
void check_span_nesting(const std::string& chrome_json) {
  auto j = obs::Json::parse(chrome_json);
  ASSERT_TRUE(j.ok()) << j.status().to_string();
  ASSERT_NE(j->get("traceEvents"), nullptr);
  std::map<uint64_t, std::vector<std::string>> stacks;
  std::map<uint64_t, double> last_ts;
  for (const obs::Json& e : j->get("traceEvents")->items()) {
    const std::string& ph = e.get("ph")->as_string();
    if (ph == "M") continue;
    uint64_t tid = e.get("tid")->as_u64();
    double ts = e.get("ts")->as_double();
    auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "clock went backwards on tid " << tid;
    }
    last_ts[tid] = ts;
    if (ph == "B") {
      stacks[tid].push_back(e.get("name")->as_string());
    } else if (ph == "E") {
      ASSERT_FALSE(stacks[tid].empty()) << "unmatched E on tid " << tid;
      // The exporter fills each E's name from its matching B.
      EXPECT_EQ(e.get("name")->as_string(), stacks[tid].back());
      stacks[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << stack.size() << " unclosed span(s) on tid "
                               << tid << " (top: " << stack.back() << ")";
  }
}

// ---------------------------------------------------------------------------
// Full-stack capture: VM migration with enclaves under ScopedObservation.

constexpr uint64_t kEcallAdd = 1;

std::shared_ptr<sdk::EnclaveProgram> make_counter_program() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("obs-counter");
  prog->add_ecall(kEcallAdd, "add", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    env.work(200);
    env.write_u64(env.layout().data_off,
                  env.read_u64(env.layout().data_off) + r.u64());
    return OkStatus();
  });
  return prog;
}

struct Captured {
  std::string trace_json;
  std::string metrics_json;
  hv::MigrationReport report;
};

// One deterministic end-to-end VM migration (two enclaves, agent off),
// captured under ScopedObservation. Identical calls must produce identical
// bytes — the simulation is seeded and the executor is deterministic.
Captured run_instrumented_migration() {
  obs::ScopedObservation capture;

  hv::World world(4);
  hv::Machine& source = world.add_machine("source");
  hv::Machine& target = world.add_machine("target");
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  guestos::GuestOs guest(source, vm);
  crypto::Drbg rng(to_bytes("obs-bed"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair dev_signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("owner")));

  guestos::Process& proc = guest.create_process("app");
  std::vector<std::unique_ptr<sdk::EnclaveHost>> hosts;
  for (int i = 0; i < 2; ++i) {
    sdk::BuildInput in;
    in.program = make_counter_program();
    in.layout.num_workers = 2;
    sdk::BuildOutput built =
        sdk::build_enclave_image(in, dev_signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    hosts.push_back(std::make_unique<sdk::EnclaveHost>(
        guest, proc, std::move(built), world.ias(),
        rng.fork(to_bytes("host"))));
  }

  Captured out;
  Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
  world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    for (auto& h : hosts) {
      ASSERT_TRUE(h->create(ctx).ok());
      auto ch = world.make_channel();
      world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
        owner.serve_one(t, c->b());
      });
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kProvision;
      cmd.channel = ch->a();
      ASSERT_TRUE(h->mailbox().post(ctx, cmd).status.ok());
      Writer w;
      w.u64(5);
      ASSERT_TRUE(h->ecall(ctx, 0, kEcallAdd, w.data()).ok());
    }
    migration::VmMigrationSession session(
        world, vm, guest, source, target,
        migration::VmMigrationSession::Options{});
    for (auto& h : hosts) session.manage(*h);
    report = session.run(ctx);
    ASSERT_TRUE(report.ok()) << report.status().to_string();
  });
  EXPECT_TRUE(world.executor().run());
  EXPECT_TRUE(report.ok());
  if (report.ok()) out.report = *report;
  out.trace_json = obs::trace().chrome_json();
  out.metrics_json = obs::metrics().json();
  return out;
}

TEST(ObsPipeline, FullMigrationTraceCoversEveryPhase) {
  Captured c = run_instrumented_migration();
  ASSERT_TRUE(c.report.success);

  // Every phase of the Fig. 8 pipeline shows up as a span.
  for (const char* span : {"vm_migration_session", "migrate_source",
                           "precopy_round", "prepare_enclaves",
                           "two_phase_checkpoint", "checkpoint.quiesce",
                           "checkpoint.dump_seal", "stop_and_copy",
                           "wait_restore_report", "migrate_target",
                           "resume_enclaves", "restore.enclave",
                           "restore.create_enclave", "cssa_replay",
                           "key_handshake.serve", "key_handshake.fetch"}) {
    EXPECT_TRUE(obs::trace().has_span(span)) << "missing span: " << span;
  }
  for (const char* inst : {"resume_ack", "vm.resumed", "key_handoff"}) {
    EXPECT_GE(obs::trace().instant_count(inst), 1u)
        << "missing instant: " << inst;
  }
  // Two enclaves => two checkpoints, two restores, two key handoffs.
  EXPECT_EQ(obs::trace().span_count("two_phase_checkpoint"), 2u);
  EXPECT_EQ(obs::trace().span_count("restore.enclave"), 2u);
  EXPECT_EQ(obs::trace().instant_count("key_handoff"), 2u);
  EXPECT_EQ(obs::metrics().counter("migration.checkpoints"), 2u);
  EXPECT_EQ(obs::metrics().counter("migration.restores"), 2u);
  EXPECT_EQ(obs::metrics().counter("sdk.keys_served"), 2u);

  // The trace is structurally valid Chrome JSON.
  check_span_nesting(c.trace_json);
}

TEST(ObsPipeline, MetricsAgreeWithMigrationReport) {
  Captured c = run_instrumented_migration();
  ASSERT_TRUE(c.report.success);
  EXPECT_EQ(obs::metrics().gauge("migration.success"), 1u);
  EXPECT_EQ(obs::metrics().gauge("migration.downtime_ns"),
            c.report.downtime_ns);
  EXPECT_EQ(obs::metrics().gauge("migration.transferred_bytes"),
            c.report.transferred_bytes);
  EXPECT_EQ(obs::metrics().gauge("migration.rounds"), c.report.rounds);
  EXPECT_EQ(obs::metrics().gauge("migration.total_ns"), c.report.total_ns);
  EXPECT_EQ(obs::metrics().gauge("migration.enclave_prepare_ns"),
            c.report.enclave_prepare_ns);
  EXPECT_EQ(obs::metrics().gauge("migration.enclave_restore_ns"),
            c.report.enclave_restore_ns);
  EXPECT_EQ(obs::metrics().counter("hv.transferred_bytes"),
            c.report.transferred_bytes);
  EXPECT_EQ(obs::metrics().counter("hv.rounds"), c.report.rounds);
  // The same numbers round-trip through the JSON dump.
  auto j = obs::Json::parse(c.metrics_json);
  ASSERT_TRUE(j.ok()) << j.status().to_string();
  EXPECT_EQ(j->get("gauges")->get("migration.downtime_ns")->as_u64(),
            c.report.downtime_ns);
  EXPECT_EQ(j->get("gauges")->get("migration.transferred_bytes")->as_u64(),
            c.report.transferred_bytes);
}

TEST(ObsPipeline, IdenticalSeedsProduceByteIdenticalOutput) {
  Captured first = run_instrumented_migration();
  Captured second = run_instrumented_migration();
  ASSERT_FALSE(first.trace_json.empty());
  EXPECT_EQ(first.trace_json, second.trace_json);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

// ---------------------------------------------------------------------------
// Fault injection shows up in the trace and the counters agree.

TEST(ObsFaults, InjectedFaultsAppearAsTraceEventsWithMatchingCounters) {
  obs::ScopedObservation capture;

  hv::World world(4);
  world.add_machine("src");
  world.add_machine("dst");
  auto channel = world.make_channel();
  sim::FaultPlan plan;
  plan.drop_message(2);                    // round 1 vanishes once
  plan.delay_message(4, 50'000'000);       // a later round arrives late
  plan.install(channel->a_to_b());

  hv::VmConfig cfg;
  cfg.memory_mb = 64;
  hv::LiveMigrationEngine engine(world.cost(), hv::MigrationParams{});
  Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
  world.executor().spawn("src", [&](sim::ThreadCtx& c) {
    hv::Vm vm(cfg, hv::DirtyModel{});
    report = engine.migrate_source(c, vm, channel->a());
  });
  world.executor().spawn("dst", [&](sim::ThreadCtx& c) {
    hv::Vm vm(cfg, hv::DirtyModel{});
    (void)engine.migrate_target(c, vm, channel->b());
  });
  ASSERT_TRUE(world.executor().run());
  ASSERT_TRUE(report.ok()) << report.status().to_string();

  EXPECT_EQ(plan.faults_fired(), 2u);
  EXPECT_EQ(obs::metrics().counter("sim.faults.injected"), 2u);
  EXPECT_EQ(obs::trace().instant_count("fault.drop"), 1u);
  EXPECT_EQ(obs::trace().instant_count("fault.delay"), 1u);
  EXPECT_EQ(obs::metrics().counter("net.msgs_dropped"), 1u);
  // The dropped round forced a retry, visible both ways.
  EXPECT_GE(obs::metrics().counter("hv.precopy.retries"), 1u);
  EXPECT_GE(obs::trace().instant_count("precopy.retry"), 1u);
}

TEST(ObsFaults, CorruptionAndSeverAreDistinguished) {
  obs::ScopedObservation capture;

  // Two independent failed migrations under one capture: a corrupted frame,
  // then a severed link. Each fault kind gets its own instant name.
  auto run_faulted = [](const sim::FaultPlan& plan) {
    hv::World world(4);
    world.add_machine("src");
    world.add_machine("dst");
    auto channel = world.make_channel();
    plan.install(channel->a_to_b());
    hv::VmConfig cfg;
    cfg.memory_mb = 64;
    hv::LiveMigrationEngine engine(world.cost(), hv::MigrationParams{});
    world.executor().spawn("src", [&](sim::ThreadCtx& c) {
      hv::Vm vm(cfg, hv::DirtyModel{});
      (void)engine.migrate_source(c, vm, channel->a());
    });
    world.executor().spawn("dst", [&](sim::ThreadCtx& c) {
      hv::Vm vm(cfg, hv::DirtyModel{});
      (void)engine.migrate_target(c, vm, channel->b());
    });
    ASSERT_TRUE(world.executor().run());
  };

  sim::FaultPlan corrupt;
  corrupt.corrupt_message(1);
  run_faulted(corrupt);
  sim::FaultPlan sever;
  sever.sever_at_message(2);  // round 0 lands; round 1 kills the link
  run_faulted(sever);

  EXPECT_EQ(corrupt.faults_fired(), 1u);
  EXPECT_GE(sever.faults_fired(), 1u);
  EXPECT_EQ(obs::trace().instant_count("fault.corrupt"), 1u);
  EXPECT_GE(obs::trace().instant_count("fault.sever"), 1u);
  EXPECT_EQ(obs::metrics().counter("sim.faults.injected"),
            corrupt.faults_fired() + sever.faults_fired());
  // Both failed migrations surface as hv-level aborts or timeouts; the
  // corrupted run's abort notice is an explicit trace instant.
  EXPECT_GE(obs::trace().instant_count("migration.abort"), 1u);
  EXPECT_EQ(obs::metrics().counter("hv.aborts"),
            obs::trace().instant_count("migration.abort"));
}

}  // namespace
}  // namespace mig
