// Post-copy / hybrid migration (wire format v4) tests: the enclave-level
// remote-page round trip, the tamper/rejection matrix for page replies
// (stale epoch, splice, replay, truncation, out-of-chain MAC), source-side
// epoch binding and serve-exactly-once, the fail-closed source-outage path
// (target self-destroys, the pre-migration store snapshot stays
// restorable), the session-level post-copy and hybrid VM migrations, and a
// seeded property sweep asserting every acknowledged write survives any
// interleaving of pump traffic, dirty rate and flip timing.
#include <gtest/gtest.h>

#include <random>

#include "migration/page_service.h"
#include "migration/session.h"
#include "sdk/chunk_wire.h"
#include "store/counter_service.h"
#include "store/snapshot_store.h"
#include "util/serde.h"

namespace mig::migration {
namespace {

using sdk::ControlCmd;

constexpr uint64_t kEcallAdd = 1;
constexpr uint64_t kEcallGet = 3;
constexpr uint64_t kEcallFillHeap = 4;

// Counter in the data page plus a heap-page filler, same shape as the delta
// tests: writes after the last delta round become the post-copy tail.
std::shared_ptr<sdk::EnclaveProgram> make_postcopy_program() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("postcopy-counter");
  prog->add_ecall(kEcallAdd, "add", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t delta = r.u64();
    uint64_t off = env.layout().data_off;
    env.work(200);
    env.write_u64(off, env.read_u64(off) + delta);
    Writer w;
    w.u64(env.read_u64(off));
    env.set_retval(w.take());
    return OkStatus();
  });
  prog->add_ecall(kEcallGet, "get", [](sdk::EnclaveEnv& env, sdk::Frame&) {
    Writer w;
    w.u64(env.read_u64(env.layout().data_off));
    env.set_retval(w.take());
    return OkStatus();
  });
  prog->add_ecall(kEcallFillHeap, "fill_heap",
                  [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t page = r.u64();
    uint8_t fill = static_cast<uint8_t>(r.u64());
    env.work(500);
    env.write_bytes(env.layout().heap_off + page * sgx::kPageSize,
                    Bytes(sgx::kPageSize, fill));
    return OkStatus();
  });
  return prog;
}

struct PostcopyBed {
  hv::World world;
  hv::Machine* source;
  hv::Machine* target;
  hv::Vm vm;
  guestos::GuestOs guest;
  guestos::Process* process;
  crypto::Drbg rng{to_bytes("postcopy-bed")};
  crypto::SigKeyPair dev_signer;
  EnclaveOwner owner;
  store::CounterService counters;
  store::SealedSnapshotStore snapshots;

  explicit PostcopyBed(uint64_t dirty_pages_per_sec = 1'600)
      : world(4),
        source(&world.add_machine("source")),
        target(&world.add_machine("target")),
        vm(hv::VmConfig{}, hv::DirtyModel{dirty_pages_per_sec, 40'000}),
        guest(*source, vm),
        process(&guest.create_process("app")),
        owner(world.ias(), crypto::Drbg(to_bytes("owner"))),
        counters(world.ias(), crypto::Drbg(to_bytes("ctr"))) {
    crypto::Drbg srng(to_bytes("dev-signer"));
    dev_signer = crypto::sig_keygen(srng);
  }

  std::unique_ptr<sdk::EnclaveHost> make_host(uint64_t heap_pages = 4) {
    sdk::BuildInput in;
    in.program = make_postcopy_program();
    in.layout.num_workers = 2;
    in.layout.heap_pages = heap_pages;
    in.counter_service_pk = counters.public_key();
    sdk::BuildOutput built = sdk::build_enclave_image(
        in, dev_signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    return std::make_unique<sdk::EnclaveHost>(
        guest, *process, std::move(built), world.ias(),
        rng.fork(to_bytes("host")));
  }

  void provision(sim::ThreadCtx& ctx, sdk::EnclaveHost& host) {
    auto channel = world.make_channel();
    world.executor().spawn("owner", [this, ch = channel.get()](
                                        sim::ThreadCtx& c) {
      owner.serve_one(c, ch->b());
    });
    ControlCmd cmd;
    cmd.type = ControlCmd::Type::kProvision;
    cmd.channel = channel->a();
    ASSERT_TRUE(host.mailbox().post(ctx, cmd).status.ok());
  }

  void run(std::function<void(sim::ThreadCtx&)> fn) {
    world.executor().spawn("test", std::move(fn));
    ASSERT_TRUE(world.executor().run());
  }
};

uint64_t add(sim::ThreadCtx& ctx, sdk::EnclaveHost& host, uint64_t delta) {
  Writer w;
  w.u64(delta);
  auto r = host.ecall(ctx, 0, kEcallAdd, w.data());
  EXPECT_TRUE(r.ok()) << r.status().to_string();
  if (!r.ok()) return 0;
  Reader rd(*r);
  return rd.u64();
}

void fill_heap(sim::ThreadCtx& ctx, sdk::EnclaveHost& host, uint64_t page,
               uint8_t fill) {
  Writer w;
  w.u64(page);
  w.u64(fill);
  ASSERT_TRUE(host.ecall(ctx, 1, kEcallFillHeap, w.data()).ok());
}

uint64_t get_counter(sim::ThreadCtx& ctx, sdk::EnclaveHost& host) {
  auto got = host.ecall(ctx, 0, kEcallGet, {});
  EXPECT_TRUE(got.ok()) << got.status().to_string();
  if (!got.ok()) return ~0ull;
  Reader rd(*got);
  return rd.u64();
}

// ---- enclave-level round trip ------------------------------------------------

TEST(Postcopy, RoundTripPullsResidualTailOnDemand) {
  PostcopyBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    add(ctx, *host, 1000);

    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;
    opts.post_copy = true;
    std::vector<Bytes> segments;

    auto base = migrator.dump_baseline(ctx, *host, opts);
    ASSERT_TRUE(base.ok()) << base.status().to_string();
    segments.push_back(std::move(base->segment));

    add(ctx, *host, 300);
    auto d1 = migrator.dump_delta(ctx, *host, opts, /*final_dump=*/false);
    ASSERT_TRUE(d1.ok()) << d1.status().to_string();
    segments.push_back(std::move(d1->segment));

    // Writes after the last delta round: these pages become the remote
    // manifest instead of crossing in the final dump.
    add(ctx, *host, 30);
    fill_heap(ctx, *host, 1, 0x5a);
    fill_heap(ctx, *host, 2, 0x6b);
    auto fin = migrator.dump_delta(ctx, *host, opts, /*final_dump=*/true);
    ASSERT_TRUE(fin.ok()) << fin.status().to_string();
    segments.push_back(std::move(fin->segment));
    Bytes container = sdk::encode_delta_container(segments);

    auto source_inst = host->detach_instance();
    sgx::EnclaveId source_eid = source_inst->eid;
    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    Status st = migrator.restore(ctx, *host, *bed.source, source_inst,
                                 std::move(container), opts);
    ASSERT_TRUE(st.ok()) << st.to_string();

    EXPECT_EQ(host->instance()->machine, bed.target);
    EXPECT_EQ(get_counter(ctx, *host), 1330u);
    EXPECT_FALSE(bed.source->hw().enclave_exists(source_eid));
  });
}

TEST(Postcopy, RemoteRecordsRefusedWhenPullDisabled) {
  PostcopyBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    add(ctx, *host, 5);

    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions dump_opts;
    dump_opts.post_copy = true;
    std::vector<Bytes> segments;
    auto base = migrator.dump_baseline(ctx, *host, dump_opts);
    ASSERT_TRUE(base.ok());
    segments.push_back(std::move(base->segment));
    add(ctx, *host, 5);
    auto fin = migrator.dump_delta(ctx, *host, dump_opts, /*final_dump=*/true);
    ASSERT_TRUE(fin.ok());
    segments.push_back(std::move(fin->segment));

    // A restorer that did not opt into post-copy must refuse a checkpoint
    // that promises pages by hash only — silently accepting zero
    // placeholders would be a data-loss hole.
    EnclaveMigrateOptions restore_opts;  // post_copy stays false
    auto source_inst = host->detach_instance();
    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    Status st = migrator.restore(ctx, *host, *bed.source, source_inst,
                                 sdk::encode_delta_container(segments),
                                 restore_opts);
    EXPECT_EQ(st.code(), ErrorCode::kIntegrityViolation) << st.to_string();
    EXPECT_NE(st.message().find("post-copy is not enabled"), std::string::npos)
        << st.message();
  });
}

// ---- source-side page service ------------------------------------------------

// Direct kServePages against an armed source: wrong-epoch requests are
// refused, pages outside the manifest are refused, and each manifest page is
// served exactly once (a replayed request finds it gone).
TEST(Postcopy, SourceBindsServiceToEpochAndServesEachPageOnce) {
  PostcopyBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    add(ctx, *host, 7);

    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;
    ASSERT_TRUE(migrator.dump_baseline(ctx, *host, opts).ok());
    add(ctx, *host, 7);
    fill_heap(ctx, *host, 0, 0x11);
    // Final dump posted directly so the reply's manifest + epoch are visible.
    ControlCmd fin;
    fin.type = ControlCmd::Type::kDumpDelta;
    fin.final_dump = true;
    fin.postcopy_tail = true;
    sdk::ControlReply fr = host->mailbox().post(ctx, fin);
    ASSERT_TRUE(fr.status.ok()) << fr.status.to_string();
    ASSERT_GE(fr.postcopy_pending.size(), 2u);
    ASSERT_GT(fr.postcopy_epoch, 0u);

    auto serve = [&](uint64_t epoch,
                     std::vector<uint64_t> pages) -> sdk::ControlReply {
      sdk::PageRequest req;
      req.epoch = epoch;
      req.pages = std::move(pages);
      ControlCmd cmd;
      cmd.type = ControlCmd::Type::kServePages;
      cmd.blob = sdk::encode_page_request(req);
      return host->mailbox().post(ctx, cmd);
    };

    uint64_t page = fr.postcopy_pending.front();
    // Wrong epoch: a pull on behalf of some other migration (or a fork) is
    // refused before any page content is touched.
    sdk::ControlReply stale = serve(fr.postcopy_epoch + 1, {page});
    EXPECT_EQ(stale.status.code(), ErrorCode::kPermissionDenied)
        << stale.status.to_string();
    EXPECT_NE(stale.status.message().find("this source serves epoch"),
              std::string::npos)
        << stale.status.message();
    // Page never in the manifest.
    sdk::ControlReply outside = serve(fr.postcopy_epoch, {100'000});
    EXPECT_EQ(outside.status.code(), ErrorCode::kInvalidArgument)
        << outside.status.to_string();
    // Valid request serves; the identical replay finds the page gone — the
    // frozen image hands out each page exactly once.
    sdk::ControlReply good = serve(fr.postcopy_epoch, {page});
    ASSERT_TRUE(good.status.ok()) << good.status.to_string();
    auto reply = sdk::parse_page_reply(good.blob);
    ASSERT_TRUE(reply.ok()) << reply.status().to_string();
    EXPECT_EQ(reply->epoch, fr.postcopy_epoch);
    ASSERT_GE(reply->records.size(), 1u);
    EXPECT_EQ(reply->records[0].page, page);
    sdk::ControlReply replay = serve(fr.postcopy_epoch, {page});
    EXPECT_EQ(replay.status.code(), ErrorCode::kInvalidArgument)
        << replay.status.to_string();
  });
}

// ---- target-side rejection matrix --------------------------------------------

struct TamperOutcome {
  Status restore = OkStatus();
  uint64_t replies_forwarded = 0;
};

// Runs a full post-copy migration whose page link crosses a man-in-the-middle
// thread: every request is served honestly by the retained source enclave,
// but `mutate_first` decides what the target actually receives in place of
// the first reply frame (several frames = replay, none would be an outage).
// `demand_batch` shapes the frames: the default packs every residual page
// into one multi-record reply (splice fodder); 1 leaves pages outstanding
// after the first apply so a replayed duplicate actually reaches the
// verifier instead of arriving after the pull already drained.
TamperOutcome restore_with_mitm(
    const std::function<std::vector<Bytes>(Bytes)>& mutate_first,
    uint64_t demand_batch = 8) {
  TamperOutcome out;
  PostcopyBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    add(ctx, *host, 11);

    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;
    opts.post_copy = true;
    std::vector<Bytes> segments;
    auto base = migrator.dump_baseline(ctx, *host, opts);
    ASSERT_TRUE(base.ok());
    segments.push_back(std::move(base->segment));
    add(ctx, *host, 22);
    auto d1 = migrator.dump_delta(ctx, *host, opts, /*final_dump=*/false);
    ASSERT_TRUE(d1.ok());
    segments.push_back(std::move(d1->segment));
    // At least three remote pages so the first reply carries several records
    // (the splice case swaps two of them).
    add(ctx, *host, 44);
    fill_heap(ctx, *host, 1, 0x33);
    fill_heap(ctx, *host, 2, 0x44);
    auto fin = migrator.dump_delta(ctx, *host, opts, /*final_dump=*/true);
    ASSERT_TRUE(fin.ok());
    segments.push_back(std::move(fin->segment));
    Bytes container = sdk::encode_delta_container(segments);

    auto source_inst = host->detach_instance();
    sdk::ControlMailbox* smb = source_inst->mailbox.get();
    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());

    auto ch = bed.world.make_channel();
    sim::Channel::End client = ch->b();
    sim::Event mitm_done(bed.world.executor());
    bed.world.executor().spawn(
        "mitm", [&, server = ch->a()](sim::ThreadCtx& c) mutable {
          bool first = true;
          for (;;) {
            std::optional<Bytes> f = server.recv_timeout(c, 60'000'000'000);
            if (!f) break;
            auto kind = sdk::page_frame_kind(*f);
            if (!kind || *kind == sdk::PageFrameKind::kDone) break;
            ControlCmd cmd;
            cmd.type = ControlCmd::Type::kServePages;
            cmd.blob = std::move(*f);
            sdk::ControlReply r = smb->post(c, cmd);
            if (!r.status.ok()) break;
            if (first) {
              first = false;
              for (Bytes& g : mutate_first(std::move(r.blob))) {
                ++out.replies_forwarded;
                server.send(c, std::move(g));
              }
            } else {
              ++out.replies_forwarded;
              server.send(c, std::move(r.blob));
            }
          }
          mitm_done.set(c);
        });

    EnclaveMigrateOptions ropts = opts;
    ropts.page_channel = &client;
    ropts.postcopy_demand_batch = demand_batch;
    out.restore = migrator.restore(ctx, *host, *bed.source, source_inst,
                                   std::move(container), ropts);
    // Wake the man-in-the-middle if the pull aborted before its kDone.
    client.send(ctx, sdk::encode_page_done());
    mitm_done.wait(ctx);
  });
  return out;
}

TEST(PostcopyTamper, HonestLinkRoundTrips) {
  TamperOutcome out = restore_with_mitm(
      [](Bytes reply) { return std::vector<Bytes>{std::move(reply)}; });
  EXPECT_TRUE(out.restore.ok()) << out.restore.to_string();
  EXPECT_GE(out.replies_forwarded, 1u);
}

TEST(PostcopyTamper, StaleEpochReplyIsRefused) {
  TamperOutcome out = restore_with_mitm([](Bytes reply) {
    auto frame = sdk::parse_page_reply(reply);
    EXPECT_TRUE(frame.ok());
    frame->epoch += 1;  // a reply bound to some other migration epoch
    return std::vector<Bytes>{sdk::encode_page_reply(*frame)};
  });
  EXPECT_EQ(out.restore.code(), ErrorCode::kIntegrityViolation)
      << out.restore.to_string();
  EXPECT_NE(out.restore.message().find("stale epoch"), std::string::npos)
      << out.restore.message();
}

TEST(PostcopyTamper, SplicedPageContentIsRefused) {
  TamperOutcome out = restore_with_mitm([](Bytes reply) {
    auto frame = sdk::parse_page_reply(reply);
    EXPECT_TRUE(frame.ok());
    EXPECT_GE(frame->records.size(), 2u);
    if (frame->records.size() >= 2)
      std::swap(frame->records[0].sealed, frame->records[1].sealed);
    return std::vector<Bytes>{sdk::encode_page_reply(*frame)};
  });
  EXPECT_EQ(out.restore.code(), ErrorCode::kIntegrityViolation)
      << out.restore.to_string();
  EXPECT_NE(out.restore.message().find("rejected"), std::string::npos)
      << out.restore.message();
}

TEST(PostcopyTamper, ReplayedReplyIsRefused) {
  TamperOutcome out = restore_with_mitm(
      [](Bytes reply) {
        return std::vector<Bytes>{reply, reply};  // the same frame twice
      },
      /*demand_batch=*/1);
  EXPECT_EQ(out.restore.code(), ErrorCode::kIntegrityViolation)
      << out.restore.to_string();
  EXPECT_NE(out.restore.message().find("replay refused"), std::string::npos)
      << out.restore.message();
}

TEST(PostcopyTamper, TruncatedReplyFrameIsRefused) {
  TamperOutcome out = restore_with_mitm([](Bytes reply) {
    reply.pop_back();
    return std::vector<Bytes>{std::move(reply)};
  });
  EXPECT_EQ(out.restore.code(), ErrorCode::kIntegrityViolation)
      << out.restore.to_string();
  EXPECT_NE(out.restore.message().find("page reply rejected"),
            std::string::npos)
      << out.restore.message();
}

TEST(PostcopyTamper, OutOfChainMacIsRefused) {
  TamperOutcome out = restore_with_mitm([](Bytes reply) {
    reply.back() ^= 1;  // last 32 bytes = the final record's chain value
    return std::vector<Bytes>{std::move(reply)};
  });
  EXPECT_EQ(out.restore.code(), ErrorCode::kIntegrityViolation)
      << out.restore.to_string();
  EXPECT_NE(out.restore.message().find("chain mismatch"), std::string::npos)
      << out.restore.message();
}

// ---- fail closed on source outage --------------------------------------------

TEST(Postcopy, SourceOutageDestroysTargetButSourceImageStaysRestorable) {
  PostcopyBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    add(ctx, *host, 5);

    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;
    opts.counter_service = &bed.counters;
    // Pre-migration snapshot: the recovery point the fail-closed design
    // protects (the failed target must never advance the counter past it).
    auto snap = migrator.snapshot_to_store(ctx, *host, bed.snapshots, opts);
    ASSERT_TRUE(snap.ok()) << snap.status().to_string();

    opts.post_copy = true;
    std::vector<Bytes> segments;
    auto base = migrator.dump_baseline(ctx, *host, opts);
    ASSERT_TRUE(base.ok());
    segments.push_back(std::move(base->segment));
    add(ctx, *host, 3);
    auto fin = migrator.dump_delta(ctx, *host, opts, /*final_dump=*/true);
    ASSERT_TRUE(fin.ok());
    segments.push_back(std::move(fin->segment));

    auto source_inst = host->detach_instance();
    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());

    // The page link dies before a single reply crosses: the source machine
    // vanished mid-migration.
    auto page_ch = bed.world.make_channel();
    page_ch->a_to_b().sever();
    page_ch->b_to_a().sever();
    sim::Channel::End client = page_ch->b();
    EnclaveMigrateOptions ropts = opts;
    ropts.page_channel = &client;
    ropts.postcopy_reply_timeout_ns = 50'000'000;
    Status st = migrator.restore(ctx, *host, *bed.source, source_inst,
                                 std::move(sdk::encode_delta_container(segments)),
                                 ropts);
    EXPECT_EQ(st.code(), ErrorCode::kDeadlineExceeded) << st.to_string();
    EXPECT_NE(st.message().find("fail closed"), std::string::npos)
        << st.message();

    // The half-restored target self-destroyed: no command revives it.
    ControlCmd finish;
    finish.type = ControlCmd::Type::kFinishRestore;
    EXPECT_FALSE(host->mailbox().post(ctx, finish).status.ok());

    // The failed target never advanced the counter, so the pre-migration
    // snapshot is still the head and still opens — no state is lost beyond
    // the writes since that snapshot.
    host->crash_instance(ctx);
    EnclaveMigrateOptions restore_opts;
    restore_opts.counter_service = &bed.counters;
    Status recovered = migrator.restore_from_store(ctx, *host, bed.snapshots,
                                                   *snap, restore_opts);
    ASSERT_TRUE(recovered.ok()) << recovered.to_string();
    EXPECT_EQ(get_counter(ctx, *host), 5u);
  });
}

// ---- session-level post-copy / hybrid migrations ------------------------------

TEST(PostcopySession, PurePostcopyVmMigrationEndToEnd) {
  PostcopyBed bed;
  auto host = bed.make_host();
  Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
  uint64_t final_counter = 0;
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    bed.process->spawn_thread("pump", [&](sim::ThreadCtx& wctx) {
      for (int i = 0; i < 2000; ++i) {
        Writer w;
        w.u64(1);
        if (!host->ecall(wctx, 0, kEcallAdd, w.data()).ok()) break;
        wctx.sleep(1'000'000);
      }
    });

    VmMigrationSession::Options opts;
    opts.post_copy = true;
    VmMigrationSession session(bed.world, bed.vm, bed.guest, *bed.source,
                               *bed.target, opts);
    session.manage(*host);
    ctx.sleep(10'000'000);
    report = session.run(ctx);
    ASSERT_TRUE(report.ok()) << report.status().to_string();

    EXPECT_EQ(host->instance()->machine, bed.target);
    final_counter = get_counter(ctx, *host);
  });
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->success);
  EXPECT_EQ(report->postcopy_flipped, 1u);
  // The VM tail was demand-pulled after resume, not stop-and-copied.
  EXPECT_GT(report->postcopy_pages, 0u);
  EXPECT_GT(report->postcopy_batches, 0u);
  EXPECT_GT(report->postcopy_ns, 0u);
  EXPECT_GT(final_counter, 10u);
}

TEST(PostcopySession, HybridStaysPrecopyWhenConverged) {
  // A quiet guest: pre-copy converges, so hybrid must not flip and the
  // classic stop-and-copy path carries the (tiny) residue.
  PostcopyBed bed(/*dirty_pages_per_sec=*/100);
  auto host = bed.make_host();
  Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    VmMigrationSession::Options opts;
    opts.hybrid = true;
    VmMigrationSession session(bed.world, bed.vm, bed.guest, *bed.source,
                               *bed.target, opts);
    session.manage(*host);
    report = session.run(ctx);
    ASSERT_TRUE(report.ok()) << report.status().to_string();
    EXPECT_EQ(get_counter(ctx, *host), 0u);
  });
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->success);
  EXPECT_EQ(report->postcopy_flipped, 0u);
  EXPECT_EQ(report->postcopy_pages, 0u);
}

TEST(PostcopySession, HybridFlipsWhenPrecopyCannotConverge) {
  // A write-hot guest far beyond the link's drain rate: pre-copy cannot
  // converge, so the hybrid detector must flip to post-copy instead of
  // burning max_rounds and eating a huge stop-and-copy.
  PostcopyBed bed(/*dirty_pages_per_sec=*/200'000);
  auto host = bed.make_host();
  Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    VmMigrationSession::Options opts;
    opts.hybrid = true;
    VmMigrationSession session(bed.world, bed.vm, bed.guest, *bed.source,
                               *bed.target, opts);
    session.manage(*host);
    report = session.run(ctx);
    ASSERT_TRUE(report.ok()) << report.status().to_string();
  });
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->success);
  EXPECT_EQ(report->postcopy_flipped, 1u);
  EXPECT_GT(report->postcopy_pages, 0u);
  // The flip happened after the convergence detector had its signal, not
  // after all 30 default rounds were burned.
  EXPECT_LT(report->rounds, hv::MigrationParams{}.max_rounds);
}

// ---- property sweep ------------------------------------------------------------

// Random dirty rates, pump cadences, flip modes and pull batch sizes must
// never lose an acknowledged write: after the migration settles, the counter
// equals exactly the number of acknowledged increments. Mirrors the lease
// interleaving sweep in store_test.cc. 10 seeds, deterministic virtual time.
TEST(PostcopyProperty, InterleavingsPreserveEveryAckedWrite) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 prng(seed);
    const uint64_t rates[] = {0, 800, 20'000, 300'000};
    PostcopyBed bed(rates[prng() % 4]);
    auto host = bed.make_host();
    Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
    bed.run([&](sim::ThreadCtx& ctx) {
      ASSERT_TRUE(host->create(ctx).ok());
      bed.provision(ctx, *host);

      uint64_t acked = 0;
      bool pump_failed = false;
      bool stop = false;
      uint64_t cadence_ns = 200'000 + prng() % 2'000'000;
      bed.process->spawn_thread("pump", [&](sim::ThreadCtx& wctx) {
        while (!stop) {
          Writer w;
          w.u64(1);
          if (!host->ecall(wctx, 0, kEcallAdd, w.data()).ok()) {
            pump_failed = true;
            break;
          }
          ++acked;
          wctx.sleep(cadence_ns);
        }
      });

      VmMigrationSession::Options opts;
      if (seed % 2 == 0)
        opts.hybrid = true;
      else
        opts.post_copy = true;
      opts.precopy.max_rounds = 4 + prng() % 6;
      opts.precopy.postcopy_batch_pages = 64u << (prng() % 4);
      VmMigrationSession session(bed.world, bed.vm, bed.guest, *bed.source,
                                 *bed.target, opts);
      session.manage(*host);
      ctx.sleep(prng() % 10'000'000);
      report = session.run(ctx);
      ASSERT_TRUE(report.ok()) << report.status().to_string();

      stop = true;
      ctx.sleep(5'000'000);
      EXPECT_FALSE(pump_failed);
      // Exactly the acknowledged increments — nothing lost in the flip, the
      // pull, or the CSSA replay; nothing duplicated either.
      EXPECT_EQ(get_counter(ctx, *host), acked);
    });
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->success);
  }
}

}  // namespace
}  // namespace mig::migration
