// SDK integration tests: image build + measurement, enclave creation through
// the guest driver, resumable ecalls with real AEX/ERESUME cycles, the
// two-phase checkpointing protocol, and checkpoint sealing.
#include <gtest/gtest.h>

#include "hv/machine.h"
#include "guestos/guest_os.h"
#include "sdk/builder.h"
#include "sdk/host.h"
#include "util/serde.h"

namespace mig::sdk {
namespace {

// Test program: a counter in the data region plus a long-running accumulate
// ecall that exercises AEX.
constexpr uint64_t kEcallAdd = 1;       // args: u64 delta -> retval u64 total
constexpr uint64_t kEcallLongSum = 2;   // args: u64 iters -> retval u64 sum
constexpr uint64_t kEcallGet = 3;

std::shared_ptr<EnclaveProgram> make_counter_program() {
  auto prog = std::make_shared<EnclaveProgram>("counter");
  prog->add_ecall(kEcallAdd, "add", [](EnclaveEnv& env, Frame& frame) {
    Bytes args = frame.args();
    Reader r(args);
    uint64_t delta = r.u64();
    uint64_t off = env.layout().data_off;
    env.work(200);
    env.write_u64(off, env.read_u64(off) + delta);
    Writer w;
    w.u64(env.read_u64(off));
    env.set_retval(w.take());
    return OkStatus();
  });
  prog->add_ecall(kEcallLongSum, "long_sum", [](EnclaveEnv& env, Frame& frame) {
    Bytes args = frame.args();
    Reader r(args);
    uint64_t iters = r.u64();
    // Resumable loop: pc counts completed iterations, the running sum lives
    // in a frame local (enclave memory).
    while (frame.pc() < iters) {
      env.work(50'000);  // 50 us per iteration => AEX every ~20 iterations
      frame.set_local(0, frame.local(0) + frame.pc());
      frame.step();
    }
    Writer w;
    w.u64(frame.local(0));
    env.set_retval(w.take());
    return OkStatus();
  });
  prog->add_ecall(kEcallGet, "get", [](EnclaveEnv& env, Frame&) {
    Writer w;
    w.u64(env.read_u64(env.layout().data_off));
    env.set_retval(w.take());
    return OkStatus();
  });
  return prog;
}

struct TestBed {
  hv::World world;
  hv::Machine* machine;
  hv::Vm vm;
  guestos::GuestOs guest;
  guestos::Process* process;
  crypto::Drbg rng{to_bytes("sdk-test")};
  crypto::SigKeyPair dev_signer;

  TestBed()
      : world(4),
        machine(&world.add_machine("m0")),
        vm(hv::VmConfig{}, hv::DirtyModel{}),
        guest(*machine, vm),
        process(&guest.create_process("app")) {
    crypto::Drbg signer_rng(to_bytes("dev"));
    dev_signer = crypto::sig_keygen(signer_rng);
  }

  std::unique_ptr<EnclaveHost> make_host(
      std::shared_ptr<EnclaveProgram> prog = make_counter_program(),
      bool migration_support = true) {
    BuildInput in;
    in.program = std::move(prog);
    in.layout.num_workers = 2;
    in.migration_support = migration_support;
    BuildOutput built = build_enclave_image(in, dev_signer,
                                            world.ias().service_pk(), rng);
    return std::make_unique<EnclaveHost>(guest, *process, std::move(built),
                                         world.ias(), rng.fork(to_bytes("h")));
  }

  void run(std::function<void(sim::ThreadCtx&)> fn) {
    world.executor().spawn("test", std::move(fn));
    ASSERT_TRUE(world.executor().run());
  }
};

TEST(SdkBuilder, IdenticalInputsSameMeasurementDifferentProgramsDiffer) {
  crypto::Drbg rng1(to_bytes("r")), rng2(to_bytes("r"));
  crypto::Drbg srng(to_bytes("s"));
  crypto::SigKeyPair signer = crypto::sig_keygen(srng);
  crypto::BigNum ias_pk = signer.pk;  // placeholder pk for the test
  BuildInput in;
  in.program = make_counter_program();
  auto b1 = build_enclave_image(in, signer, ias_pk, rng1);
  auto b2 = build_enclave_image(in, signer, ias_pk, rng2);
  EXPECT_EQ(b1.image.measure(), b2.image.measure());
  EXPECT_EQ(b1.image.sigstruct.enclave_hash, b1.image.measure());

  BuildInput other = in;
  other.program = std::make_shared<EnclaveProgram>("different");
  auto b3 = build_enclave_image(other, signer, ias_pk, rng1);
  EXPECT_NE(b1.image.measure(), b3.image.measure());

  // Disabling migration support changes the measured SDK runtime.
  BuildInput plain = in;
  plain.migration_support = false;
  auto b4 = build_enclave_image(plain, signer, ias_pk, rng1);
  EXPECT_NE(b1.image.measure(), b4.image.measure());
}

TEST(SdkHost, CreateEcallDestroy) {
  TestBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    Writer w;
    w.u64(5);
    auto r = host->ecall(ctx, 0, kEcallAdd, w.data());
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    Reader rd(*r);
    EXPECT_EQ(rd.u64(), 5u);
    Writer w2;
    w2.u64(7);
    r = host->ecall(ctx, 1, kEcallAdd, w2.data());  // second worker, shared state
    ASSERT_TRUE(r.ok());
    Reader rd2(*r);
    EXPECT_EQ(rd2.u64(), 12u);
    EXPECT_TRUE(host->destroy(ctx).ok());
  });
}

TEST(SdkHost, LongEcallSurvivesManyAexCycles) {
  TestBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    Writer w;
    w.u64(100);  // 100 iterations x 50 us = 5 ms >> 1 ms timer tick
    auto r = host->ecall(ctx, 0, kEcallLongSum, w.data());
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    Reader rd(*r);
    EXPECT_EQ(rd.u64(), 100ull * 99 / 2);
    // CSSA must be balanced again (every AEX matched by an ERESUME).
    auto cssa = bed.machine->hw().debug_read_cssa_for_test(
        host->instance()->eid, kEnclaveBase + host->layout().tcs_offset(0));
    ASSERT_TRUE(cssa.ok());
    EXPECT_EQ(*cssa, 0u);
  });
}

TEST(SdkHost, UnknownEcallFails) {
  TestBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    auto r = host->ecall(ctx, 0, 999, {});
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  });
}

TEST(SdkControl, PrepareCheckpointReachesQuiescenceAndSeals) {
  TestBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    // Mutate state first.
    Writer w;
    w.u64(42);
    ASSERT_TRUE(host->ecall(ctx, 0, kEcallAdd, w.data()).ok());
    // Two-phase checkpoint with idle workers.
    ControlCmd cmd;
    cmd.type = ControlCmd::Type::kPrepareCheckpoint;
    cmd.cipher = crypto::CipherAlg::kRc4;
    ControlReply reply = host->mailbox().post(ctx, cmd);
    ASSERT_TRUE(reply.status.ok()) << reply.status.to_string();
    EXPECT_GT(reply.blob.size(), 4096u);  // meta+tls+data+heap, sealed
    // The blob is ciphertext: the counter value (42) must not be findable
    // as a plaintext u64.
    Writer pat;
    pat.u64(42);
    auto it = std::search(reply.blob.begin(), reply.blob.end(),
                          pat.data().begin(), pat.data().end());
    EXPECT_EQ(it, reply.blob.end());

    // Workers now spin at entry (global flag set): cancel releases them.
    ControlCmd cancel;
    cancel.type = ControlCmd::Type::kCancelMigration;
    ASSERT_TRUE(host->mailbox().post(ctx, cancel).status.ok());
    Writer w2;
    w2.u64(1);
    auto r = host->ecall(ctx, 0, kEcallAdd, w2.data());
    ASSERT_TRUE(r.ok());
    Reader rd(*r);
    EXPECT_EQ(rd.u64(), 43u);
  });
}

TEST(SdkControl, CheckpointWaitsForBusyWorker) {
  TestBed bed;
  auto host = bed.make_host();
  uint64_t checkpoint_done_at = 0;
  uint64_t worker_done_at = 0;
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    // A worker thread grinding a long ecall.
    sim::Event worker_started(bed.world.executor());
    bed.process->spawn_thread("worker", [&](sim::ThreadCtx& wctx) {
      worker_started.set(wctx);
      Writer w;
      w.u64(60);  // 3 ms of enclave work
      auto r = host->ecall(wctx, 0, kEcallLongSum, w.data());
      EXPECT_TRUE(r.ok());
      worker_done_at = wctx.now();
    });
    worker_started.wait(ctx);
    ctx.sleep(200'000);  // let the worker get going
    ControlCmd cmd;
    cmd.type = ControlCmd::Type::kPrepareCheckpoint;
    ControlReply reply = host->mailbox().post(ctx, cmd);
    ASSERT_TRUE(reply.status.ok()) << reply.status.to_string();
    checkpoint_done_at = ctx.now();
    ControlCmd cancel;
    cancel.type = ControlCmd::Type::kCancelMigration;
    ASSERT_TRUE(host->mailbox().post(ctx, cancel).status.ok());
  });
  // Without migration_in_progress, the library resumes the worker after
  // every AEX, so the ecall runs to completion before quiescence: the
  // checkpoint can only finish after the worker's ecall finished.
  EXPECT_GT(checkpoint_done_at, 0u);
  EXPECT_GT(worker_done_at, 0u);
  EXPECT_GT(checkpoint_done_at, worker_done_at);
}

TEST(SdkControl, SecondCheckpointAfterCancelWorks) {
  TestBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    for (int round = 0; round < 3; ++round) {
      ControlCmd cmd;
      cmd.type = ControlCmd::Type::kPrepareCheckpoint;
      ControlReply reply = host->mailbox().post(ctx, cmd);
      ASSERT_TRUE(reply.status.ok());
      ControlCmd cancel;
      cancel.type = ControlCmd::Type::kCancelMigration;
      ASSERT_TRUE(host->mailbox().post(ctx, cancel).status.ok());
    }
  });
}

TEST(SdkControl, CheckpointCipherMatchesPaperTiming) {
  // §VIII-B: RC4 ~200 us vs DES ~300 us for ~20 KB of state. Our default
  // enclave state (meta + 2 tls + data + heap) is ~36 KB; check the *ratio*.
  TestBed bed;
  auto host = bed.make_host();
  uint64_t rc4_ns = 0, des_ns = 0;
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    for (auto [alg, out] :
         {std::pair{crypto::CipherAlg::kRc4, &rc4_ns},
          std::pair{crypto::CipherAlg::kDesCbc, &des_ns}}) {
      uint64_t t0 = ctx.now();
      ControlCmd cmd;
      cmd.type = ControlCmd::Type::kPrepareCheckpoint;
      cmd.cipher = alg;
      ASSERT_TRUE(host->mailbox().post(ctx, cmd).status.ok());
      *out = ctx.now() - t0;
      ControlCmd cancel;
      cancel.type = ControlCmd::Type::kCancelMigration;
      ASSERT_TRUE(host->mailbox().post(ctx, cancel).status.ok());
    }
  });
  EXPECT_GT(des_ns, rc4_ns);
  EXPECT_NEAR(static_cast<double>(des_ns) / rc4_ns, 1.4, 0.3);
}

TEST(SdkHost, MigrationSupportOffSkipsInstrumentation) {
  TestBed bed;
  auto host = bed.make_host(make_counter_program(), /*migration_support=*/false);
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    EXPECT_FALSE(host->migration_support());
    Writer w;
    w.u64(9);
    auto r = host->ecall(ctx, 0, kEcallAdd, w.data());
    ASSERT_TRUE(r.ok());
    Reader rd(*r);
    EXPECT_EQ(rd.u64(), 9u);
  });
}

}  // namespace
}  // namespace mig::sdk
