// Tests for the §VII-A side-channel mitigation (checkpoint size padding) and
// the §IV-B SGXv1 W+X-page limitation.
#include <gtest/gtest.h>

#include "guestos/guest_os.h"
#include "hv/machine.h"
#include "migration/owner.h"
#include "migration/session.h"
#include "sdk/builder.h"
#include "sdk/host.h"
#include "util/serde.h"

namespace mig::sdk {
namespace {

std::shared_ptr<EnclaveProgram> heap_user_prog() {
  auto prog = std::make_shared<EnclaveProgram>("heap-user");
  prog->add_ecall(1, "grow", [](EnclaveEnv& env, Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t bytes = r.u64();
    auto ptr = env.heap_alloc(bytes);
    MIG_RETURN_IF_ERROR(ptr.status());
    env.write_u64(*ptr, 0xfeedULL);
    return OkStatus();
  });
  return prog;
}

struct PadBed {
  hv::World world{4};
  hv::Machine* machine = &world.add_machine("m0");
  hv::Vm vm{hv::VmConfig{}, hv::DirtyModel{}};
  guestos::GuestOs guest{*machine, vm};
  guestos::Process* proc = &guest.create_process("p");
  crypto::Drbg rng{to_bytes("pad")};
  crypto::SigKeyPair signer = [] {
    crypto::Drbg r(to_bytes("dev"));
    return crypto::sig_keygen(r);
  }();

  std::unique_ptr<EnclaveHost> make_host(bool wx_page = false,
                                         uint64_t heap_pages = 4) {
    BuildInput in;
    in.program = heap_user_prog();
    in.layout.heap_pages = heap_pages;
    in.include_wx_page = wx_page;
    BuildOutput built =
        build_enclave_image(in, signer, world.ias().service_pk(), rng);
    return std::make_unique<EnclaveHost>(guest, *proc, std::move(built),
                                         world.ias(), rng.fork(to_bytes("h")));
  }

  Result<Bytes> checkpoint(sim::ThreadCtx& ctx, EnclaveHost& host,
                           uint64_t pad) {
    ControlCmd cmd;
    cmd.type = ControlCmd::Type::kPrepareCheckpoint;
    cmd.pad_to_multiple = pad;
    ControlReply reply = host.mailbox().post(ctx, cmd);
    MIG_RETURN_IF_ERROR(reply.status);
    ControlCmd cancel;
    cancel.type = ControlCmd::Type::kCancelMigration;
    (void)host.mailbox().post(ctx, cancel);
    host.finish_migration(ctx, {});
    return std::move(reply.blob);
  }
};

TEST(SizePadding, UnpaddedCheckpointLeaksLayoutSize) {
  // Two enclaves with different heap sizes produce different unpadded
  // checkpoint sizes — exactly the leak §VII-A describes.
  PadBed bed;
  auto small = bed.make_host(false, 2);
  auto big = bed.make_host(false, 16);
  bed.world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(small->create(ctx).ok());
    ASSERT_TRUE(big->create(ctx).ok());
    auto b1 = bed.checkpoint(ctx, *small, 0);
    auto b2 = bed.checkpoint(ctx, *big, 0);
    ASSERT_TRUE(b1.ok());
    ASSERT_TRUE(b2.ok());
    EXPECT_NE(b1->size(), b2->size());
    // With 1 MB-bucket padding the sizes are indistinguishable.
    auto p1 = bed.checkpoint(ctx, *small, 1 << 20);
    auto p2 = bed.checkpoint(ctx, *big, 1 << 20);
    ASSERT_TRUE(p1.ok());
    ASSERT_TRUE(p2.ok());
    EXPECT_EQ((p1->size() + 4095) / (1 << 20), (p2->size() + 4095) / (1 << 20));
  });
  ASSERT_TRUE(bed.world.executor().run());
}

TEST(SizePadding, PaddedCheckpointStillRestores) {
  // Padding must be transparent to the restore path (parser ignores it).
  PadBed bed;
  hv::Machine& target = bed.world.add_machine("m1");
  migration::EnclaveOwner owner(bed.world.ias(), crypto::Drbg(to_bytes("o")));
  BuildInput in;
  in.program = heap_user_prog();
  BuildOutput built = build_enclave_image(in, bed.signer,
                                          bed.world.ias().service_pk(),
                                          bed.rng);
  owner.enroll(built.image.measure(), built.owner);
  EnclaveHost host(bed.guest, *bed.proc, std::move(built), bed.world.ias(),
                   bed.rng.fork(to_bytes("h2")));
  bed.world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host.create(ctx).ok());
    auto ch = bed.world.make_channel();
    bed.world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
      owner.serve_one(t, c->b());
    });
    ControlCmd prov;
    prov.type = ControlCmd::Type::kProvision;
    prov.channel = ch->a();
    ASSERT_TRUE(host.mailbox().post(ctx, prov).status.ok());

    Writer grow;
    grow.u64(100);
    ASSERT_TRUE(host.ecall(ctx, 0, 1, grow.data()).ok());

    migration::EnclaveMigrator migrator(bed.world);
    host.begin_parking();
    ControlCmd cmd;
    cmd.type = ControlCmd::Type::kPrepareCheckpoint;
    cmd.pad_to_multiple = 1 << 20;
    ControlReply reply = host.mailbox().post(ctx, cmd);
    ASSERT_TRUE(reply.status.ok());
    EXPECT_GE(reply.blob.size(), 1u << 20);
    auto inst = host.detach_instance();
    bed.guest.set_migration_target(target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    Status st = migrator.restore(ctx, host, *bed.machine, inst,
                                 std::move(reply.blob), {});
    EXPECT_TRUE(st.ok()) << st.to_string();
  });
  ASSERT_TRUE(bed.world.executor().run());
}

TEST(WxLimitation, NonReadablePageMakesEnclaveUnmigratable) {
  // §IV-B: a W+X (non-readable) page defeats the software dump. The control
  // thread reports it cleanly instead of shipping a corrupt checkpoint.
  PadBed bed;
  auto host = bed.make_host(/*wx_page=*/true);
  bed.world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    ControlCmd cmd;
    cmd.type = ControlCmd::Type::kPrepareCheckpoint;
    ControlReply reply = host->mailbox().post(ctx, cmd);
    EXPECT_FALSE(reply.status.ok());
    EXPECT_EQ(reply.status.code(), ErrorCode::kPermissionDenied);
    EXPECT_NE(reply.status.message().find("SGXv1"), std::string::npos);
    // The enclave itself still works (cancel releases the flag).
    ControlCmd cancel;
    cancel.type = ControlCmd::Type::kCancelMigration;
    ASSERT_TRUE(host->mailbox().post(ctx, cancel).status.ok());
    Writer grow;
    grow.u64(64);
    EXPECT_TRUE(host->ecall(ctx, 0, 1, grow.data()).ok());
  });
  ASSERT_TRUE(bed.world.executor().run());
}

TEST(WxLimitation, HardwareAssistedPathMigratesWxPages) {
  // The §VII-B instructions export pages at hardware level: the W+X page is
  // no obstacle (one of the arguments for the proposal).
  hv::World world(4);
  hv::Machine& src = world.add_machine("s", 24'576, /*migration_ext=*/true);
  hv::Machine& dst = world.add_machine("d", 24'576, /*migration_ext=*/true);
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  guestos::GuestOs guest(src, vm);
  guestos::Process& proc = guest.create_process("p");
  crypto::Drbg rng(to_bytes("wx-hw"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair signer = crypto::sig_keygen(srng);
  BuildInput in;
  in.program = heap_user_prog();
  in.include_wx_page = true;
  BuildOutput built =
      build_enclave_image(in, signer, world.ias().service_pk(), rng);
  EnclaveHost host(guest, proc, std::move(built), world.ias(),
                   rng.fork(to_bytes("h")));
  world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host.create(ctx).ok());
    sgx::EnclaveId eid = host.instance()->eid;
    sim::ThreadId control = host.instance()->control_thread;
    (void)host.mailbox().post(ctx, ControlCmd{});  // shutdown control thread
    ctx.spin_until([&] { return world.executor().finished(control); });

    Bytes ek = crypto::Drbg(to_bytes("k1")).generate(32);
    Bytes mk = crypto::Drbg(to_bytes("k2")).generate(32);
    ASSERT_TRUE(src.hw().eputkey(ctx, ek, mk).ok());
    ASSERT_TRUE(dst.hw().eputkey(ctx, ek, mk).ok());
    ASSERT_TRUE(src.hw().emigrate(ctx, eid).ok());
    auto msecs = src.hw().emigrate_export_secs(ctx, eid);
    ASSERT_TRUE(msecs.ok());
    auto teid = dst.hw().emigrate_import_secs(ctx, *msecs);
    ASSERT_TRUE(teid.ok());
    for (uint64_t lin : src.hw().resident_pages(eid)) {
      auto page = src.hw().eswpout(ctx, eid, lin);  // W+X page included
      ASSERT_TRUE(page.ok());
      ASSERT_TRUE(dst.hw().eswpin(ctx, *teid, *page).ok());
    }
    auto trailer = src.hw().emigrate_state_hash(ctx, eid);
    ASSERT_TRUE(
        dst.hw().emigratedone(ctx, *teid, trailer->first, trailer->second)
            .ok());
  });
  ASSERT_TRUE(world.executor().run());
}

}  // namespace
}  // namespace mig::sdk
