// Tests for the workload applications: nbench kernels (correctness of the
// real computations + the Fig. 9(a) overhead shape), Fig. 9(b) workloads,
// the memcached-like KV store (including migration with MBs of state), and
// the mail server.
#include <gtest/gtest.h>

#include "apps/kv.h"
#include "apps/mailserver.h"
#include "apps/nbench.h"
#include "apps/workloads.h"
#include "guestos/guest_os.h"
#include "hv/machine.h"
#include "migration/session.h"
#include "sdk/builder.h"
#include "sdk/host.h"
#include "util/serde.h"

namespace mig::apps {
namespace {

TEST(Nbench, KernelsAreDeterministicAndDistinct) {
  for (const NbenchKernel& k : nbench_kernels()) {
    uint64_t a = k.run(42);
    uint64_t b = k.run(42);
    uint64_t c = k.run(43);
    EXPECT_EQ(a, b) << k.name;
    EXPECT_NE(a, c) << k.name << " ignores its seed";
    EXPECT_NE(a, 0u) << k.name;
  }
}

TEST(Nbench, EnclaveOverheadShapeMatchesFig9a) {
  const sim::CostModel& cm = sim::default_cost_model();
  uint64_t epc = 92ull << 20;
  double string_sort_ratio = 0;
  for (const NbenchKernel& k : nbench_kernels()) {
    double ratio = static_cast<double>(nbench_enclave_ns(k, cm, epc)) /
                   nbench_native_ns(k, cm);
    EXPECT_GE(ratio, 1.0) << k.name;
    if (k.name == "StringSort") {
      string_sort_ratio = ratio;
      // The paper's outlier: ~an order of magnitude slower in the enclave.
      EXPECT_GT(ratio, 6.0);
      EXPECT_LT(ratio, 14.0);
    } else {
      // Everything else stays small (paper: "not obvious if the workload is
      // computation intensive and has small memory footprint").
      EXPECT_LT(ratio, 1.6) << k.name;
    }
  }
  EXPECT_GT(string_sort_ratio, 0);
}

TEST(Nbench, EpcPressureAddsPagingCost) {
  const sim::CostModel& cm = sim::default_cost_model();
  const NbenchKernel& ss = nbench_kernels()[1];  // StringSort, 32 MB footprint
  uint64_t comfy = nbench_enclave_ns(ss, cm, 92ull << 20);
  uint64_t tight = nbench_enclave_ns(ss, cm, 16ull << 20);
  EXPECT_GT(tight, comfy);
}

struct AppBed {
  hv::World world{4};
  hv::Machine* machine = &world.add_machine("m0");
  hv::Vm vm{hv::VmConfig{}, hv::DirtyModel{}};
  guestos::GuestOs guest{*machine, vm};
  guestos::Process* process = &guest.create_process("app");
  crypto::Drbg rng{to_bytes("app-bed")};
  crypto::SigKeyPair dev_signer = [] {
    crypto::Drbg r(to_bytes("dev"));
    return crypto::sig_keygen(r);
  }();

  std::unique_ptr<sdk::EnclaveHost> make_host(
      std::shared_ptr<sdk::EnclaveProgram> prog, sdk::LayoutParams layout = {},
      bool migration_support = true) {
    sdk::BuildInput in;
    in.program = std::move(prog);
    in.layout = layout;
    in.migration_support = migration_support;
    sdk::BuildOutput built = sdk::build_enclave_image(
        in, dev_signer, world.ias().service_pk(), rng);
    return std::make_unique<sdk::EnclaveHost>(guest, *process, std::move(built),
                                              world.ias(),
                                              rng.fork(to_bytes("h")));
  }

  void run(std::function<void(sim::ThreadCtx&)> fn) {
    world.executor().spawn("test", std::move(fn));
    ASSERT_TRUE(world.executor().run());
  }
};

class WorkloadSuite : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadSuite, ProcessesBlocksAndMigrationStubsCostAlmostNothing) {
  const Workload& w = fig9b_workloads()[GetParam()];
  uint64_t with_ns = 0, without_ns = 0;
  uint64_t digest_with = 0, digest_without = 0;
  for (bool support : {true, false}) {
    AppBed bed;
    auto host = bed.make_host(w.make_program(), {}, support);
    uint64_t elapsed = 0;
    uint64_t digest = 0;
    bed.run([&](sim::ThreadCtx& ctx) {
      ASSERT_TRUE(host->create(ctx).ok());
      uint64_t t0 = ctx.now();
      for (int i = 0; i < 20; ++i) {
        Writer args;
        args.u64(w.default_block);
        auto r = host->ecall(ctx, 0, kWorkloadEcallProcess, args.data());
        ASSERT_TRUE(r.ok()) << w.name << ": " << r.status().to_string();
      }
      elapsed = ctx.now() - t0;
      auto d = host->ecall(ctx, 0, kWorkloadEcallDigest, {});
      ASSERT_TRUE(d.ok());
      Reader rd(*d);
      digest = rd.u64();
    });
    if (support) {
      with_ns = elapsed;
      digest_with = digest;
    } else {
      without_ns = elapsed;
      digest_without = digest;
    }
  }
  // Same computation either way...
  EXPECT_EQ(digest_with, digest_without) << w.name;
  EXPECT_NE(digest_with, 0u);
  // ...and the migration instrumentation costs < 2% (Fig. 9(b): "almost no
  // overhead").
  EXPECT_GE(with_ns, without_ns);
  EXPECT_LT(static_cast<double>(with_ns) / without_ns, 1.02) << w.name;
}

INSTANTIATE_TEST_SUITE_P(AllSix, WorkloadSuite, ::testing::Range(0, 6),
                         [](const auto& info) {
                           return fig9b_workloads()[info.param].name;
                         });

TEST(Kv, SetGetFillStats) {
  AppBed bed;
  auto host = bed.make_host(make_kv_program(), kv_layout(/*value_mb=*/1));
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    Writer set;
    set.u64(7);
    set.u64(100);
    ASSERT_TRUE(host->ecall(ctx, 0, kKvEcallSet, set.data()).ok());
    Writer get;
    get.u64(7);
    auto r1 = host->ecall(ctx, 0, kKvEcallGet, get.data());
    ASSERT_TRUE(r1.ok());
    auto r2 = host->ecall(ctx, 1, kKvEcallGet, get.data());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(*r1, *r2);  // stable checksum across workers
    Writer missing;
    missing.u64(9999);
    EXPECT_FALSE(host->ecall(ctx, 0, kKvEcallGet, missing.data()).ok());
    Writer fill;
    fill.u64(50);
    fill.u64(200);
    ASSERT_TRUE(host->ecall(ctx, 0, kKvEcallFill, fill.data()).ok());
    auto stats = host->ecall(ctx, 0, kKvEcallStats, {});
    ASSERT_TRUE(stats.ok());
    Reader rd(*stats);
    EXPECT_EQ(rd.u64(), 51u);
  });
}

TEST(Kv, MegabytesOfStateSurviveMigration) {
  hv::World world(4);
  hv::Machine& source = world.add_machine("src");
  hv::Machine& target = world.add_machine("dst");
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  guestos::GuestOs guest(source, vm);
  guestos::Process& proc = guest.create_process("kv");
  crypto::Drbg rng(to_bytes("kv-mig"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("own")));

  sdk::BuildInput in;
  in.program = make_kv_program();
  in.layout = kv_layout(/*value_mb=*/4);
  sdk::BuildOutput built =
      sdk::build_enclave_image(in, signer, world.ias().service_pk(), rng);
  owner.enroll(built.image.measure(), built.owner);
  sdk::EnclaveHost host(guest, proc, std::move(built), world.ias(),
                        rng.fork(to_bytes("h")));

  world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host.create(ctx).ok());
    // Provision so the key handshake can be signed.
    auto ch = world.make_channel();
    world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
      owner.serve_one(t, c->b());
    });
    sdk::ControlCmd prov;
    prov.type = sdk::ControlCmd::Type::kProvision;
    prov.channel = ch->a();
    ASSERT_TRUE(host.mailbox().post(ctx, prov).status.ok());

    Writer fill;
    fill.u64(2000);
    fill.u64(900);
    ASSERT_TRUE(host.ecall(ctx, 0, kKvEcallFill, fill.data()).ok());
    Writer get;
    get.u64(1234);
    auto before = host.ecall(ctx, 0, kKvEcallGet, get.data());
    ASSERT_TRUE(before.ok());

    migration::EnclaveMigrator migrator(world);
    migration::EnclaveMigrateOptions opts;
    opts.cipher = crypto::CipherAlg::kAes128CbcNi;  // as in Fig. 11
    auto blob = migrator.prepare(ctx, host, opts);
    ASSERT_TRUE(blob.ok());
    EXPECT_GT(blob->size(), 4u << 20);  // the 4 MB heap travels
    auto inst = host.detach_instance();
    guest.set_migration_target(target);
    ASSERT_TRUE(guest.resume_enclaves_after_migration(ctx).ok());
    ASSERT_TRUE(migrator.restore(ctx, host, source, inst,
                                 std::move(*blob), opts).ok());

    auto after = host.ecall(ctx, 0, kKvEcallGet, get.data());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*before, *after);
    auto stats = host.ecall(ctx, 0, kKvEcallStats, {});
    ASSERT_TRUE(stats.ok());
    Reader rd(*stats);
    EXPECT_EQ(rd.u64(), 2000u);
  });
  ASSERT_TRUE(world.executor().run());
}

TEST(MailServer, CreateDeleteSendFlow) {
  AppBed bed;
  auto host = bed.make_host(make_mail_program());
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    constexpr uint64_t kAlice = 1, kBob = 2, kEve = 666;
    Writer create;
    create.u64(3);
    create.u64(kAlice);
    create.u64(kBob);
    create.u64(kEve);
    ASSERT_TRUE(host->ecall(ctx, 0, kMailEcallCreate, create.data()).ok());
    Writer del;
    del.u64(kEve);
    ASSERT_TRUE(host->ecall(ctx, 0, kMailEcallDelete, del.data()).ok());
    auto sent = host->ecall(ctx, 0, kMailEcallSend, {});
    ASSERT_TRUE(sent.ok());
    Reader r(*sent);
    ASSERT_EQ(r.u64(), 2u);
    EXPECT_EQ(r.u64(), kAlice);
    EXPECT_EQ(r.u64(), kBob);
    // No double-send.
    EXPECT_FALSE(host->ecall(ctx, 0, kMailEcallSend, {}).ok());
  });
}

}  // namespace
}  // namespace mig::apps
