// Tests for the deterministic cooperative executor: virtual-time accounting,
// multi-CPU contention, events, preemption hooks, suspension and kill.
#include "sim/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace mig::sim {
namespace {

TEST(Executor, SingleThreadAccumulatesVirtualTime) {
  Executor exec(1);
  uint64_t end_time = 0;
  exec.spawn("t", [&](ThreadCtx& ctx) {
    ctx.work(1'000);
    ctx.work(2'000);
    end_time = ctx.now();
  });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(end_time, 3'000u);
}

TEST(Executor, TwoThreadsOnOneCpuSerialize) {
  Executor exec(1);
  uint64_t end_a = 0, end_b = 0;
  exec.spawn("a", [&](ThreadCtx& ctx) { ctx.work(10'000); end_a = ctx.now(); });
  exec.spawn("b", [&](ThreadCtx& ctx) { ctx.work(10'000); end_b = ctx.now(); });
  ASSERT_TRUE(exec.run());
  // Total CPU demand is 20 us on one CPU: the later finisher ends at 20 us.
  EXPECT_EQ(std::max(end_a, end_b), 20'000u);
}

TEST(Executor, TwoThreadsOnTwoCpusRunInParallel) {
  Executor exec(2);
  uint64_t end_a = 0, end_b = 0;
  exec.spawn("a", [&](ThreadCtx& ctx) { ctx.work(10'000); end_a = ctx.now(); });
  exec.spawn("b", [&](ThreadCtx& ctx) { ctx.work(10'000); end_b = ctx.now(); });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(end_a, 10'000u);
  EXPECT_EQ(end_b, 10'000u);
}

TEST(Executor, ContentionEmergesWithMoreThreadsThanCpus) {
  // 8 threads x 100 us on 4 CPUs => makespan 200 us.
  Executor exec(4);
  uint64_t max_end = 0;
  for (int i = 0; i < 8; ++i) {
    exec.spawn("w", [&](ThreadCtx& ctx) {
      ctx.work(100'000);
      max_end = std::max(max_end, ctx.now());
    });
  }
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(max_end, 200'000u);
}

TEST(Executor, SleepDoesNotOccupyCpu) {
  Executor exec(1);
  uint64_t end_sleeper = 0, end_worker = 0;
  exec.spawn("sleeper", [&](ThreadCtx& ctx) {
    ctx.sleep(50'000);
    end_sleeper = ctx.now();
  });
  exec.spawn("worker", [&](ThreadCtx& ctx) {
    ctx.work(10'000);
    end_worker = ctx.now();
  });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(end_sleeper, 50'000u);
  EXPECT_EQ(end_worker, 10'000u);  // ran during the sleep
}

TEST(Executor, EventJoinsClocks) {
  Executor exec(2);
  Event ev(exec);
  uint64_t waiter_time = 0;
  exec.spawn("waiter", [&](ThreadCtx& ctx) {
    ev.wait(ctx);
    waiter_time = ctx.now();
  });
  exec.spawn("setter", [&](ThreadCtx& ctx) {
    ctx.work(30'000);
    ev.set(ctx);
  });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(waiter_time, 30'000u);
}

TEST(Executor, WaitOnAlreadySetEventReturnsImmediately) {
  Executor exec(1);
  Event ev(exec);
  uint64_t waiter_time = 0;
  exec.spawn("setter", [&](ThreadCtx& ctx) {
    ctx.work(5'000);
    ev.set(ctx);
  });
  ASSERT_TRUE(exec.run());
  exec.spawn("late", [&](ThreadCtx& ctx) {
    ev.wait(ctx);
    waiter_time = ctx.now();
  });
  ASSERT_TRUE(exec.run());
  EXPECT_GE(waiter_time, 5'000u);
}

TEST(Executor, HangIsReportedNotDeadlocked) {
  Executor exec(1);
  Event never(exec);
  exec.spawn("stuck", [&](ThreadCtx& ctx) { never.wait(ctx); });
  EXPECT_FALSE(exec.run());
}

TEST(Executor, DaemonDoesNotKeepRunAlive) {
  Executor exec(1);
  exec.spawn(
      "spinner",
      [&](ThreadCtx& ctx) {
        for (;;) ctx.work(1'000);  // spin forever; killed at shutdown
      },
      /*daemon=*/true);
  exec.spawn("main", [&](ThreadCtx& ctx) { ctx.work(10'000); });
  EXPECT_TRUE(exec.run());
}

TEST(Executor, PreemptHookFiresAtQuantumBoundaries) {
  Executor exec(1, /*quantum_ns=*/10'000);
  int hook_count = 0;
  exec.spawn("t", [&](ThreadCtx& ctx) {
    ctx.set_preempt_hook([&](ThreadCtx&) { ++hook_count; });
    ctx.work(55'000);  // 5 full quanta + remainder
    ctx.set_preempt_hook(nullptr);
  });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(hook_count, 5);
}

TEST(Executor, WorkAtomicSkipsPreemptHook) {
  Executor exec(1, 10'000);
  int hook_count = 0;
  exec.spawn("t", [&](ThreadCtx& ctx) {
    ctx.set_preempt_hook([&](ThreadCtx&) { ++hook_count; });
    ctx.work_atomic(100'000);
    ctx.set_preempt_hook(nullptr);
  });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(hook_count, 0);
}

TEST(Executor, HookMayChargeNestedWorkWithoutRecursion) {
  Executor exec(1, 10'000);
  int hook_count = 0;
  uint64_t end_time = 0;
  exec.spawn("t", [&](ThreadCtx& ctx) {
    ctx.set_preempt_hook([&](ThreadCtx& c) {
      ++hook_count;
      c.work(25'000);  // longer than a quantum: must not re-trigger the hook
    });
    ctx.work(20'000);
    ctx.set_preempt_hook(nullptr);
    end_time = ctx.now();
  });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(hook_count, 2);
  EXPECT_EQ(end_time, 20'000u + 2 * 25'000u);
}

TEST(Executor, SuspendParksThreadUntilResume) {
  Executor exec(2);
  uint64_t victim_end = 0;
  ThreadId victim = exec.spawn("victim", [&](ThreadCtx& ctx) {
    ctx.work(5'000);
    ctx.yield();  // suspension takes effect at a scheduling point
    ctx.work(5'000);
    victim_end = ctx.now();
  });
  exec.spawn("boss", [&](ThreadCtx& ctx) {
    ctx.work(1'000);
    exec.suspend(victim);
    ctx.work(100'000);
    exec.resume(victim, ctx.now());
  });
  ASSERT_TRUE(exec.run());
  // The victim's second burst happened only after resume at ~101 us.
  EXPECT_GE(victim_end, 101'000u);
}

TEST(Executor, KillUnwindsThroughRaii) {
  Executor exec(1);
  bool cleaned_up = false;
  struct Raii {
    bool* flag;
    ~Raii() { *flag = true; }
  };
  ThreadId victim = exec.spawn("victim", [&](ThreadCtx& ctx) {
    Raii r{&cleaned_up};
    for (;;) ctx.work(1'000);
  });
  exec.spawn("killer", [&](ThreadCtx& ctx) {
    ctx.work(10'000);
    exec.kill(victim);
  });
  ASSERT_TRUE(exec.run());
  EXPECT_TRUE(cleaned_up);
  EXPECT_TRUE(exec.finished(victim));
}

TEST(Executor, SpinUntilObservesFlagWrittenByOtherThread) {
  Executor exec(2);
  std::atomic<bool> flag{false};
  uint64_t spin_end = 0;
  exec.spawn("spinner", [&](ThreadCtx& ctx) {
    ctx.spin_until([&] { return flag.load(); });
    spin_end = ctx.now();
  });
  exec.spawn("setter", [&](ThreadCtx& ctx) {
    ctx.work(40'000);
    flag.store(true);
  });
  ASSERT_TRUE(exec.run());
  EXPECT_GE(spin_end, 40'000u);
  EXPECT_LE(spin_end, 45'000u);  // poll interval bounds the lag
}

TEST(Executor, DeterministicAcrossRuns) {
  auto run_once = [] {
    Executor exec(4);
    std::vector<uint64_t> ends;
    for (int i = 0; i < 6; ++i) {
      exec.spawn("w", [&, i](ThreadCtx& ctx) {
        for (int k = 0; k < 3; ++k) ctx.work(1'000 * (i + 1));
        ends.push_back(ctx.now());
      });
    }
    EXPECT_TRUE(exec.run());
    return ends;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Executor, RunUntilPausesAndResumes) {
  Executor exec(1);
  uint64_t end_time = 0;
  exec.spawn("t", [&](ThreadCtx& ctx) {
    for (int i = 0; i < 100; ++i) ctx.work(1'000);
    end_time = ctx.now();
  });
  ASSERT_TRUE(exec.run_until(50'000));
  EXPECT_EQ(end_time, 0u);  // not yet finished
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(end_time, 100'000u);
}

TEST(Executor, SpawnFromSimThreadInheritsClock) {
  Executor exec(2);
  uint64_t child_start = 0;
  exec.spawn("parent", [&](ThreadCtx& ctx) {
    ctx.work(77'000);
    ctx.executor().spawn("child", [&](ThreadCtx& c) {
      child_start = c.now();
    });
  });
  ASSERT_TRUE(exec.run());
  EXPECT_GE(child_start, 77'000u);
}

TEST(EventWaitUntil, TimeoutAdvancesClockToDeadlineAndReturnsFalse) {
  Executor exec(1);
  Event ev(exec);
  bool got = true;
  uint64_t after = 0;
  exec.spawn("waiter", [&](ThreadCtx& ctx) {
    got = ev.wait_until(ctx, 5'000'000);
    after = ctx.now();
  });
  ASSERT_TRUE(exec.run());  // a timed wait never deadlocks the world
  EXPECT_FALSE(got);
  EXPECT_EQ(after, 5'000'000u);
}

TEST(EventWaitUntil, SetBeforeDeadlineWakesEarlyAndJoinsClocks) {
  Executor exec(2);
  Event ev(exec);
  bool got = false;
  uint64_t after = 0;
  exec.spawn("waiter", [&](ThreadCtx& ctx) {
    got = ev.wait_until(ctx, 50'000'000);
    after = ctx.now();
  });
  exec.spawn("setter", [&](ThreadCtx& ctx) {
    ctx.sleep(1'000'000);
    ev.set(ctx);
  });
  ASSERT_TRUE(exec.run());
  EXPECT_TRUE(got);
  EXPECT_GE(after, 1'000'000u);   // woke at the setter's time...
  EXPECT_LT(after, 50'000'000u);  // ...not at the deadline
}

TEST(EventWaitUntil, PastDeadlineChecksWithoutBlocking) {
  Executor exec(1);
  Event ev(exec);
  exec.spawn("t", [&](ThreadCtx& ctx) {
    ctx.work(2'000);
    // Unset event, deadline already behind us: false, clock untouched.
    EXPECT_FALSE(ev.wait_until(ctx, 1'000));
    EXPECT_EQ(ctx.now(), 2'000u);
    ev.set(ctx);
    // Set event: true regardless of the stale deadline.
    EXPECT_TRUE(ev.wait_until(ctx, 1'000));
  });
  ASSERT_TRUE(exec.run());
}

TEST(EventWaitUntil, AbandonedWaitersAllTimeOutIndependently) {
  // Several threads waiting on events nobody will ever set: with deadlines
  // this is not a deadlock — each times out at its own virtual instant.
  Executor exec(4);
  Event never1(exec), never2(exec);
  std::vector<uint64_t> wake(3, 0);
  exec.spawn("a", [&](ThreadCtx& ctx) {
    EXPECT_FALSE(never1.wait_until(ctx, 3'000'000));
    wake[0] = ctx.now();
  });
  exec.spawn("b", [&](ThreadCtx& ctx) {
    EXPECT_FALSE(never1.wait_until(ctx, 7'000'000));
    wake[1] = ctx.now();
  });
  exec.spawn("c", [&](ThreadCtx& ctx) {
    EXPECT_FALSE(never2.wait_until(ctx, 5'000'000));
    wake[2] = ctx.now();
  });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(wake[0], 3'000'000u);
  EXPECT_EQ(wake[1], 7'000'000u);
  EXPECT_EQ(wake[2], 5'000'000u);
}

}  // namespace
}  // namespace mig::sim
