// End-to-end enclave migration tests: the paper's §III pipeline across two
// simulated machines, including state equivalence, in-flight ecalls (CSSA
// restore), the agent optimization, owner provisioning, and cancellation.
#include <gtest/gtest.h>

#include "guestos/guest_os.h"
#include "hv/machine.h"
#include "migration/owner.h"
#include "migration/session.h"
#include "sdk/builder.h"
#include "sdk/host.h"
#include "util/serde.h"

namespace mig::migration {
namespace {

using sdk::ControlCmd;

constexpr uint64_t kEcallAdd = 1;
constexpr uint64_t kEcallLongSum = 2;
constexpr uint64_t kEcallGet = 3;

std::shared_ptr<sdk::EnclaveProgram> make_counter_program() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("mig-counter");
  prog->add_ecall(kEcallAdd, "add", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t delta = r.u64();
    uint64_t off = env.layout().data_off;
    env.work(200);
    env.write_u64(off, env.read_u64(off) + delta);
    Writer w;
    w.u64(env.read_u64(off));
    env.set_retval(w.take());
    return OkStatus();
  });
  prog->add_ecall(kEcallLongSum, "long_sum",
                  [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t iters = r.u64();
    while (f.pc() < iters) {
      env.work(50'000);
      f.set_local(0, f.local(0) + f.pc());
      f.step();
    }
    Writer w;
    w.u64(f.local(0));
    env.set_retval(w.take());
    return OkStatus();
  });
  prog->add_ecall(kEcallGet, "get", [](sdk::EnclaveEnv& env, sdk::Frame&) {
    Writer w;
    w.u64(env.read_u64(env.layout().data_off));
    env.set_retval(w.take());
    return OkStatus();
  });
  return prog;
}

// A two-machine world with one enclave-carrying guest on the source.
struct MigrationBed {
  hv::World world;
  hv::Machine* source;
  hv::Machine* target;
  hv::Vm vm;
  guestos::GuestOs guest;
  guestos::Process* process;
  crypto::Drbg rng{to_bytes("mig-bed")};
  crypto::SigKeyPair dev_signer;
  EnclaveOwner owner;

  MigrationBed()
      : world(4),
        source(&world.add_machine("source")),
        target(&world.add_machine("target")),
        vm(hv::VmConfig{}, hv::DirtyModel{}),
        guest(*source, vm),
        process(&guest.create_process("app")),
        owner(world.ias(), crypto::Drbg(to_bytes("owner"))) {
    crypto::Drbg srng(to_bytes("dev-signer"));
    dev_signer = crypto::sig_keygen(srng);
  }

  std::unique_ptr<sdk::EnclaveHost> make_host(uint64_t workers = 2) {
    sdk::BuildInput in;
    in.program = make_counter_program();
    in.layout.num_workers = workers;
    sdk::BuildOutput built = sdk::build_enclave_image(
        in, dev_signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    return std::make_unique<sdk::EnclaveHost>(
        guest, *process, std::move(built), world.ias(),
        rng.fork(to_bytes("host")));
  }

  // Launch-time provisioning (required before the source can sign the key
  // handshake): attest to the owner, decrypt the embedded identity key.
  void provision(sim::ThreadCtx& ctx, sdk::EnclaveHost& host) {
    auto channel = world.make_channel();
    world.executor().spawn("owner", [this, ch = channel.get()](
                                        sim::ThreadCtx& c) {
      owner.serve_one(c, ch->b());
    });
    ControlCmd cmd;
    cmd.type = ControlCmd::Type::kProvision;
    cmd.channel = channel->a();
    sdk::ControlReply reply = host.mailbox().post(ctx, cmd);
    ASSERT_TRUE(reply.status.ok()) << reply.status.to_string();
  }

  void run(std::function<void(sim::ThreadCtx&)> fn) {
    world.executor().spawn("test", std::move(fn));
    ASSERT_TRUE(world.executor().run());
  }
};

TEST(Provisioning, OwnerDeliversIdentityKeyAfterAttestation) {
  MigrationBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    EXPECT_EQ(bed.owner.audit_log().size(), 1u);
    EXPECT_EQ(bed.owner.audit_log()[0].verb, "PROVISION");
  });
}

TEST(Provisioning, UnknownEnclaveRefused) {
  MigrationBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    EnclaveOwner stranger(bed.world.ias(), crypto::Drbg(to_bytes("x")));
    auto channel = bed.world.make_channel();
    bed.world.executor().spawn("owner", [&, ch = channel.get()](
                                            sim::ThreadCtx& c) {
      stranger.serve_one(c, ch->b());
    });
    ControlCmd cmd;
    cmd.type = ControlCmd::Type::kProvision;
    cmd.channel = channel->a();
    sdk::ControlReply reply = host->mailbox().post(ctx, cmd);
    EXPECT_FALSE(reply.status.ok());
  });
}

// The core scenario: quiescent enclave migrates; counter state survives.
TEST(EnclaveMigration, StateSurvivesMachineSwitch) {
  MigrationBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    Writer w;
    w.u64(1234);
    ASSERT_TRUE(host->ecall(ctx, 0, kEcallAdd, w.data()).ok());

    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;
    auto ckpt = migrator.prepare(ctx, *host, opts);
    ASSERT_TRUE(ckpt.ok()) << ckpt.status().to_string();
    auto source_inst = host->detach_instance();
    sgx::EnclaveId source_eid = source_inst->eid;

    // Simulate the VM's arrival on the target machine.
    bed.guest.set_migration_target(*bed.target);
    auto restore_ns = bed.guest.resume_enclaves_after_migration(ctx);
    // (resume_enclaves does the rebind; restore handlers were not
    // registered, so now run the migrator manually.)
    ASSERT_TRUE(restore_ns.ok());
    Status st = migrator.restore(ctx, *host, *bed.source,
                                 source_inst, std::move(*ckpt),
                                 opts);
    ASSERT_TRUE(st.ok()) << st.to_string();

    // The enclave now lives on the target machine with the same state.
    EXPECT_EQ(host->instance()->machine, bed.target);
    auto got = host->ecall(ctx, 0, kEcallGet, {});
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    Reader rd(*got);
    EXPECT_EQ(rd.u64(), 1234u);
    // The source enclave is gone (EPC reclaimed after self-destroy).
    EXPECT_FALSE(bed.source->hw().enclave_exists(source_eid));
  });
}

// A worker mid-ecall when migration hits: parks on the source, resumes on
// the target through the restored CSSA + SSA, and finishes with the right
// answer. This exercises the whole §IV machinery end to end.
TEST(EnclaveMigration, InFlightEcallResumesOnTarget) {
  MigrationBed bed;
  auto host = bed.make_host();
  Result<Bytes> worker_result = Error(ErrorCode::kInternal, "unset");
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);

    sim::Event started(bed.world.executor());
    bed.process->spawn_thread("worker", [&](sim::ThreadCtx& wctx) {
      started.set(wctx);
      Writer w;
      w.u64(400);  // 20 ms of enclave work: will straddle the migration
      worker_result = host->ecall(wctx, 0, kEcallLongSum, w.data());
    });
    started.wait(ctx);
    ctx.sleep(3'000'000);  // let it get ~3 ms in

    // The guest OS flips migration mode (as the Fig. 8 upcall would).
    auto prep = bed.guest.prepare_enclaves_for_migration(ctx);
    // No handlers registered: prepare the enclave manually, as the session
    // would from the process handler.
    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;
    auto ckpt = migrator.prepare(ctx, *host, opts);
    ASSERT_TRUE(ckpt.ok()) << ckpt.status().to_string();
    auto source_inst = host->detach_instance();

    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    Status st = migrator.restore(ctx, *host, *bed.source,
                                 source_inst, std::move(*ckpt),
                                 opts);
    ASSERT_TRUE(st.ok()) << st.to_string();
    (void)prep;
  });
  ASSERT_TRUE(worker_result.ok()) << worker_result.status().to_string();
  Reader rd(*worker_result);
  EXPECT_EQ(rd.u64(), 400ull * 399 / 2);
}

TEST(EnclaveMigration, AgentOptimizationDeliversKeyLocally) {
  MigrationBed bed;
  // Host environment on the target machine for the agent.
  hv::Vm target_host_vm(hv::VmConfig{.name = "target-host"}, hv::DirtyModel{});
  guestos::GuestOs target_host_os(*bed.target, target_host_vm);
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    Writer w;
    w.u64(77);
    ASSERT_TRUE(host->ecall(ctx, 0, kEcallAdd, w.data()).ok());

    auto agent = AgentEnclave::create(
        ctx, bed.world, target_host_os, bed.dev_signer,
        host->owner_credentials().identity, bed.world.fork_rng("agent"));
    ASSERT_TRUE(agent.ok()) << agent.status().to_string();

    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;
    auto ckpt = migrator.prepare(ctx, *host, opts);
    ASSERT_TRUE(ckpt.ok());
    auto source_inst = host->detach_instance();
    // Pre-deliver the key (this is what hides the WAN latency).
    ASSERT_TRUE(migrator.deliver_key_to_agent(ctx, *source_inst,
                                              (*agent)->mailbox()).ok());

    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    opts.agent = &(*agent)->port();
    Status st = migrator.restore(ctx, *host, *bed.source,
                                 source_inst, std::move(*ckpt),
                                 opts);
    ASSERT_TRUE(st.ok()) << st.to_string();

    auto got = host->ecall(ctx, 0, kEcallGet, {});
    ASSERT_TRUE(got.ok());
    Reader rd(*got);
    EXPECT_EQ(rd.u64(), 77u);
    ASSERT_TRUE((*agent)->destroy(ctx).ok());
  });
}

TEST(EnclaveMigration, CancelledMigrationResumesOnSource) {
  MigrationBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    Writer w;
    w.u64(5);
    ASSERT_TRUE(host->ecall(ctx, 0, kEcallAdd, w.data()).ok());

    EnclaveMigrator migrator(bed.world);
    auto ckpt = migrator.prepare(ctx, *host, EnclaveMigrateOptions{});
    ASSERT_TRUE(ckpt.ok());
    // Network trouble: cancel. Kmigrate is deleted; the checkpoint is dead.
    ControlCmd cancel;
    cancel.type = ControlCmd::Type::kCancelMigration;
    ASSERT_TRUE(host->mailbox().post(ctx, cancel).status.ok());
    host->finish_migration(ctx, {});  // release parked workers

    auto got = host->ecall(ctx, 0, kEcallGet, {});
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    Reader rd(*got);
    EXPECT_EQ(rd.u64(), 5u);
    EXPECT_EQ(host->instance()->machine, bed.source);
  });
}

TEST(EnclaveMigration, TamperedCheckpointRejected) {
  MigrationBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;
    auto ckpt = migrator.prepare(ctx, *host, opts);
    ASSERT_TRUE(ckpt.ok());
    auto source_inst = host->detach_instance();

    Bytes tampered = std::move(*ckpt);
    tampered[tampered.size() / 2] ^= 0x40;  // P-2: integrity

    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    Status st = migrator.restore(ctx, *host, *bed.source,
                                 source_inst, std::move(tampered),
                                 opts);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::kIntegrityViolation);
  });
}

}  // namespace
}  // namespace mig::migration
