// Round batching x failure handling: `round_batch_pages > 0` splits each
// pre-copy round into back-to-back kRound frames, and retry stays at
// whole-round granularity — so a dropped ack or a dropped batch frame must
// retransmit the round, converge, and never desync the protocol.
#include <gtest/gtest.h>

#include "hv/live_migration.h"
#include "hv/machine.h"
#include "sim/fault.h"

namespace mig {
namespace {

constexpr uint8_t kTagRound = 1;

struct EngineRun {
  Result<hv::MigrationReport> source = Error(ErrorCode::kInternal, "unset");
  Result<hv::MigrationReport> target = Error(ErrorCode::kInternal, "unset");
  uint64_t source_end_ns = 0;
};

EngineRun run_batched(uint64_t batch_pages,
                      const std::function<void(sim::Channel&)>& inject) {
  hv::World world(4);
  world.add_machine("src");
  world.add_machine("dst");
  auto channel = world.make_channel();
  if (inject) inject(*channel);
  hv::VmConfig cfg;
  cfg.memory_mb = 64;
  hv::MigrationParams params;
  params.round_batch_pages = batch_pages;
  hv::LiveMigrationEngine engine(world.cost(), params);
  EngineRun out;
  world.executor().spawn("src", [&](sim::ThreadCtx& c) {
    hv::Vm vm(cfg, hv::DirtyModel{});
    out.source = engine.migrate_source(c, vm, channel->a());
    out.source_end_ns = c.now();
  });
  world.executor().spawn("dst", [&](sim::ThreadCtx& c) {
    hv::Vm vm(cfg, hv::DirtyModel{});
    out.target = engine.migrate_target(c, vm, channel->b());
  });
  EXPECT_TRUE(world.executor().run());
  return out;
}

TEST(BatchRetry, DroppedAckRetransmitsTheWholeBatchedRound) {
  EngineRun clean = run_batched(512, nullptr);
  ASSERT_TRUE(clean.source.ok()) << clean.source.status().to_string();

  // Eat the ack of the first batch of round 0; the source must resend every
  // batch of the round, the target re-acks, and both sides still converge.
  sim::FaultPlan plan;
  plan.drop_message(1);
  EngineRun r = run_batched(512, [&](sim::Channel& ch) {
    plan.install(ch.b_to_a());
  });
  ASSERT_TRUE(r.source.ok()) << r.source.status().to_string();
  ASSERT_TRUE(r.target.ok()) << r.target.status().to_string();
  EXPECT_TRUE(r.source->success);
  EXPECT_EQ(plan.faults_fired(), 1u);
  // Retry is whole-round: strictly more bytes than the clean batched run.
  EXPECT_GT(r.source->transferred_bytes, clean.source->transferred_bytes);
}

TEST(BatchRetry, DroppedBatchFrameIsRepairedByRoundRetransmission) {
  sim::FaultPlan plan;
  // Round 0 of a 64 MB guest at 512-page batches is many frames; eating one
  // mid-round leaves the target short one ack and the source must retry.
  plan.drop_message(3);
  EngineRun r = run_batched(512, [&](sim::Channel& ch) {
    plan.install(ch.a_to_b());
  });
  ASSERT_TRUE(r.source.ok()) << r.source.status().to_string();
  ASSERT_TRUE(r.target.ok()) << r.target.status().to_string();
  EXPECT_TRUE(r.source->success);
  EXPECT_EQ(plan.faults_fired(), 1u);
}

TEST(BatchRetry, ExhaustedRetriesOnSeveredLinkFailBounded) {
  sim::FaultPlan plan;
  plan.sever_when([](const Bytes& m) {
    return m.size() == 17 && m[0] == kTagRound;
  });
  EngineRun r = run_batched(512, [&](sim::Channel& ch) {
    plan.install(ch.a_to_b());
  });
  EXPECT_EQ(r.source.status().code(), ErrorCode::kDeadlineExceeded)
      << r.source.status().to_string();
  EXPECT_FALSE(r.target.ok());
  hv::MigrationParams p;
  // Bounded by the retry budget, not by the target's long quiet timeout.
  EXPECT_LT(r.source_end_ns, p.target_recv_timeout_ns);
}

TEST(BatchRetry, BatchedAndClassicRunsBothConverge) {
  EngineRun classic = run_batched(0, nullptr);
  EngineRun batched = run_batched(256, nullptr);
  ASSERT_TRUE(classic.source.ok());
  ASSERT_TRUE(batched.source.ok());
  EXPECT_TRUE(batched.source->success);
  // Batching changes framing and scan/wire overlap, not the substance of
  // the transfer: the same guest converges with comparable traffic.
  EXPECT_GT(batched.source->transferred_bytes,
            classic.source->transferred_bytes / 2);
  EXPECT_LT(batched.source->transferred_bytes,
            classic.source->transferred_bytes * 2);
}

}  // namespace
}  // namespace mig
