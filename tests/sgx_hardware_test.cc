// Tests for the SGX hardware model: build/measurement, access control, the
// EENTER/EEXIT/AEX/ERESUME + CSSA state machine, EWB/ELDB paging (including
// the cross-machine failure that motivates the whole paper), attestation,
// and the §VII-B proposed migration instructions.
#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "sgx/attestation.h"
#include "sgx/hardware.h"
#include "sim/executor.h"
#include "util/serde.h"

namespace mig::sgx {
namespace {

using crypto::Drbg;

constexpr uint64_t kBase = 0x10000000;

Bytes tcs_content(uint64_t oentry, uint64_t ossa, uint64_t nssa) {
  Writer w;
  w.u64(oentry);
  w.u64(ossa);
  w.u64(nssa);
  return w.take();
}

// Builds a tiny 8-page enclave: meta page, TCS, 2 SSA pages, data pages.
struct BuiltEnclave {
  EnclaveId eid;
  uint64_t tcs_addr;
  uint64_t ssa_addr;
  uint64_t data_addr;
};

class SgxHardwareTest : public ::testing::Test {
 protected:
  SgxHardwareTest()
      : exec_(4),
        hw_(exec_, sim::default_cost_model(), Drbg(to_bytes("hw-seed")),
            HardwareConfig{.machine_name = "m0", .epc_pages = 64,
                           .migration_ext = true}),
        signer_rng_(to_bytes("signer")),
        signer_(crypto::sig_keygen(signer_rng_)) {}

  // Runs `fn` on a sim thread and returns when the simulation drains.
  void run(std::function<void(sim::ThreadCtx&)> fn) {
    exec_.spawn("test", std::move(fn));
    ASSERT_TRUE(exec_.run());
  }

  // Builds + measures + EINITs a small enclave; mirrors what the SDK does.
  BuiltEnclave build_enclave(sim::ThreadCtx& ctx, SgxHardware& hw,
                             int data_pages = 4, uint64_t nssa = 2) {
    BuiltEnclave out{};
    uint64_t size = (2 + nssa + data_pages) * kPageSize;
    // Round up to a power-of-two-ish page count (not required by the model).
    auto eid_r = hw.ecreate(ctx, kBase, size, /*prod=*/1, /*svn=*/1);
    MIG_CHECK(eid_r.ok());
    out.eid = *eid_r;
    uint64_t addr = kBase;
    // Page 0: meta/data page.
    Bytes meta(kPageSize, 0);
    MIG_CHECK(hw.eadd(ctx, out.eid, addr, PageType::kReg, Perms::rw(), meta).ok());
    MIG_CHECK(hw.eextend(ctx, out.eid, addr).ok());
    addr += kPageSize;
    // Page 1: TCS. SSA array right after.
    out.tcs_addr = addr;
    uint64_t ossa = 2 * kPageSize;
    MIG_CHECK(hw.eadd(ctx, out.eid, addr, PageType::kTcs, Perms{},
                      tcs_content(/*oentry=*/0, ossa, nssa)).ok());
    MIG_CHECK(hw.eextend(ctx, out.eid, addr).ok());
    addr += kPageSize;
    out.ssa_addr = addr;
    for (uint64_t i = 0; i < nssa; ++i) {
      MIG_CHECK(hw.eadd(ctx, out.eid, addr, PageType::kReg, Perms::rw(),
                        Bytes{}).ok());
      MIG_CHECK(hw.eextend(ctx, out.eid, addr).ok());
      addr += kPageSize;
    }
    out.data_addr = addr;
    for (int i = 0; i < data_pages; ++i) {
      Bytes content(kPageSize, static_cast<uint8_t>(0xd0 + i));
      MIG_CHECK(hw.eadd(ctx, out.eid, addr, PageType::kReg, Perms::rw(),
                        content).ok());
      MIG_CHECK(hw.eextend(ctx, out.eid, addr).ok());
      addr += kPageSize;
    }
    // The author signs the measurement. The hardware will only accept the
    // SIGSTRUCT if its hash equals the measurement, so compute it the same
    // way the SDK does: replicate the measurement protocol.
    crypto::Digest mrenclave = expected_measurement(size, nssa, data_pages);
    SigStruct sig;
    sig.enclave_hash = mrenclave;
    sig.signer_pk = signer_.pk.to_bytes();
    sig.signature = crypto::sig_sign(signer_.sk, mrenclave, signer_rng_);
    sig.isv_prod_id = 1;
    sig.isv_svn = 1;
    Status st = hw.einit(ctx, out.eid, sig);
    MIG_CHECK_MSG(st.ok(), st.to_string());
    return out;
  }

  // Replays the measurement protocol in software (what an SDK does offline).
  crypto::Digest expected_measurement(uint64_t size, uint64_t nssa,
                                      int data_pages) {
    crypto::Sha256 m;
    auto measure_ecreate = [&] {
      Writer w;
      w.str("ECREATE");
      w.u64(size);
      w.u64(1);
      w.u64(1);
      m.update(w.data());
    };
    auto measure_eadd = [&](uint64_t off, PageType t, Perms p) {
      Writer w;
      w.str("EADD");
      w.u64(off);
      w.u8(static_cast<uint8_t>(t));
      w.u8(static_cast<uint8_t>(p.r) | (p.w << 1) | (p.x << 2));
      m.update(w.data());
    };
    auto measure_eextend = [&](uint64_t off, ByteSpan content) {
      Bytes c(content.begin(), content.end());
      c.resize(kPageSize, 0);
      for (uint64_t o = 0; o < kPageSize; o += 256) {
        Writer w;
        w.str("EEXTEND");
        w.u64(off + o);
        w.raw(ByteSpan(c).subspan(o, 256));
        m.update(w.data());
      }
    };
    measure_ecreate();
    uint64_t off = 0;
    measure_eadd(off, PageType::kReg, Perms::rw());
    measure_eextend(off, Bytes(kPageSize, 0));
    off += kPageSize;
    measure_eadd(off, PageType::kTcs, Perms{});
    {
      Writer w;
      w.u8(static_cast<uint8_t>(PageType::kTcs));
      w.u64(0);
      w.u64(2 * kPageSize);
      w.u64(nssa);
      w.u64(0);
      measure_eextend(off, w.data());
    }
    off += kPageSize;
    for (uint64_t i = 0; i < nssa; ++i) {
      measure_eadd(off, PageType::kReg, Perms::rw());
      measure_eextend(off, Bytes{});
      off += kPageSize;
    }
    for (int i = 0; i < data_pages; ++i) {
      measure_eadd(off, PageType::kReg, Perms::rw());
      measure_eextend(off, Bytes(kPageSize, static_cast<uint8_t>(0xd0 + i)));
      off += kPageSize;
    }
    return m.finish();
  }

  sim::Executor exec_;
  SgxHardware hw_;
  Drbg signer_rng_;
  crypto::SigKeyPair signer_;
};

TEST_F(SgxHardwareTest, BuildAndInitProducesStableMeasurement) {
  run([&](sim::ThreadCtx& ctx) {
    BuiltEnclave e1 = build_enclave(ctx, hw_);
    BuiltEnclave e2 = build_enclave(ctx, hw_);
    const Secs* s1 = hw_.secs(e1.eid);
    const Secs* s2 = hw_.secs(e2.eid);
    ASSERT_NE(s1, nullptr);
    ASSERT_NE(s2, nullptr);
    EXPECT_TRUE(s1->initialized);
    // Identical images => identical MRENCLAVE (basis for migration step 1).
    EXPECT_EQ(s1->mrenclave, s2->mrenclave);
    EXPECT_EQ(s1->mrsigner, s2->mrsigner);
  });
}

TEST_F(SgxHardwareTest, EinitRejectsWrongHashAndWrongSignature) {
  run([&](sim::ThreadCtx& ctx) {
    auto eid = *hw_.ecreate(ctx, kBase, 4 * kPageSize, 1, 1);
    ASSERT_TRUE(hw_.eadd(ctx, eid, kBase, PageType::kReg, Perms::rw(),
                         Bytes(10, 7)).ok());
    ASSERT_TRUE(hw_.eextend(ctx, eid, kBase).ok());
    SigStruct sig;
    sig.enclave_hash = crypto::Sha256::hash(to_bytes("wrong"));
    sig.signer_pk = signer_.pk.to_bytes();
    sig.signature = crypto::sig_sign(signer_.sk, sig.enclave_hash, signer_rng_);
    EXPECT_EQ(hw_.einit(ctx, eid, sig).code(), ErrorCode::kIntegrityViolation);
  });
}

TEST_F(SgxHardwareTest, EaddAfterEinitRejected) {
  run([&](sim::ThreadCtx& ctx) {
    BuiltEnclave e = build_enclave(ctx, hw_);
    Status st = hw_.eadd(ctx, e.eid, e.data_addr + 4 * kPageSize,
                         PageType::kReg, Perms::rw(), Bytes{});
    EXPECT_EQ(st.code(), ErrorCode::kFailedPrecondition);  // SGXv1 semantics
  });
}

TEST_F(SgxHardwareTest, EnclaveMemoryIsolation) {
  run([&](sim::ThreadCtx& ctx) {
    BuiltEnclave e = build_enclave(ctx, hw_);
    BuiltEnclave other = build_enclave(ctx, hw_);
    CoreState core;
    // Outside access denied.
    EXPECT_EQ(hw_.outside_access(e.eid, e.data_addr).code(),
              ErrorCode::kPermissionDenied);
    Bytes buf(16);
    EXPECT_EQ(hw_.enclave_read(ctx, core, e.data_addr, buf).code(),
              ErrorCode::kPermissionDenied);
    // Enter enclave 1; its own data is readable, with the EADD'ed content.
    ASSERT_TRUE(hw_.eenter(ctx, core, e.eid, e.tcs_addr).ok());
    ASSERT_TRUE(hw_.enclave_read(ctx, core, e.data_addr, buf).ok());
    EXPECT_EQ(buf[0], 0xd0);
    // But another enclave's range is not ours (outside [base,base+size) of
    // the *current* enclave is rejected since both share a base in this
    // model; use a write beyond our size).
    EXPECT_FALSE(hw_.enclave_read(ctx, core,
                                  kBase + 64 * kPageSize, buf).ok());
    // TCS pages are hardware-private even from inside.
    EXPECT_EQ(hw_.enclave_read(ctx, core, e.tcs_addr, buf).code(),
              ErrorCode::kPermissionDenied);
    ASSERT_TRUE(hw_.eexit(ctx, core).ok());
    (void)other;
  });
}

TEST_F(SgxHardwareTest, EnterExitAexResumeCssaStateMachine) {
  run([&](sim::ThreadCtx& ctx) {
    BuiltEnclave e = build_enclave(ctx, hw_);
    CoreState core;

    // EENTER returns CSSA=0 in rax.
    auto rax = hw_.eenter(ctx, core, e.eid, e.tcs_addr);
    ASSERT_TRUE(rax.ok());
    EXPECT_EQ(*rax, 0u);
    EXPECT_EQ(*hw_.debug_read_cssa_for_test(e.eid, e.tcs_addr), 0u);

    // Re-entry through a busy TCS is rejected.
    CoreState core2;
    EXPECT_EQ(hw_.eenter(ctx, core2, e.eid, e.tcs_addr).status().code(),
              ErrorCode::kFailedPrecondition);

    // AEX saves context and bumps CSSA (EENTER/EEXIT do NOT change CSSA,
    // AEX/ERESUME do — exactly Fig. 5 of the paper).
    ASSERT_TRUE(hw_.aex(ctx, core, to_bytes("interrupted-ctx")).ok());
    EXPECT_FALSE(core.in_enclave);
    EXPECT_EQ(*hw_.debug_read_cssa_for_test(e.eid, e.tcs_addr), 1u);

    // Handler re-entry: EENTER now returns rax=1.
    rax = hw_.eenter(ctx, core, e.eid, e.tcs_addr);
    ASSERT_TRUE(rax.ok());
    EXPECT_EQ(*rax, 1u);
    // Nested AEX: CSSA=2. nssa=2, so a third level is denied at EENTER.
    ASSERT_TRUE(hw_.aex(ctx, core, to_bytes("handler-ctx")).ok());
    EXPECT_EQ(*hw_.debug_read_cssa_for_test(e.eid, e.tcs_addr), 2u);
    EXPECT_EQ(hw_.eenter(ctx, core, e.eid, e.tcs_addr).status().code(),
              ErrorCode::kResourceExhausted);

    // ERESUME pops contexts in LIFO order.
    auto saved = hw_.eresume(ctx, core, e.eid, e.tcs_addr);
    ASSERT_TRUE(saved.ok());
    EXPECT_EQ(to_string(*saved), "handler-ctx");
    EXPECT_EQ(*hw_.debug_read_cssa_for_test(e.eid, e.tcs_addr), 1u);
    ASSERT_TRUE(hw_.eexit(ctx, core).ok());  // handler EEXITs (no CSSA change)
    EXPECT_EQ(*hw_.debug_read_cssa_for_test(e.eid, e.tcs_addr), 1u);

    saved = hw_.eresume(ctx, core, e.eid, e.tcs_addr);
    ASSERT_TRUE(saved.ok());
    EXPECT_EQ(to_string(*saved), "interrupted-ctx");
    EXPECT_EQ(*hw_.debug_read_cssa_for_test(e.eid, e.tcs_addr), 0u);
    ASSERT_TRUE(hw_.eexit(ctx, core).ok());

    // ERESUME with CSSA=0 has no saved state.
    EXPECT_EQ(hw_.eresume(ctx, core, e.eid, e.tcs_addr).status().code(),
              ErrorCode::kFailedPrecondition);
  });
}

TEST_F(SgxHardwareTest, EwbEldbRoundTripPreservesContent) {
  run([&](sim::ThreadCtx& ctx) {
    BuiltEnclave e = build_enclave(ctx, hw_);
    uint64_t va = *hw_.epa(ctx);
    auto evicted = hw_.ewb(ctx, e.eid, e.data_addr, va, 0);
    ASSERT_TRUE(evicted.ok());
    EXPECT_FALSE(hw_.page_resident(e.eid, e.data_addr));
    // Content is encrypted: plaintext byte pattern must not be visible.
    EXPECT_EQ(std::count(evicted->ciphertext.begin(), evicted->ciphertext.end(),
                         0xd0) > 3000, false);
    ASSERT_TRUE(hw_.eldb(ctx, *evicted).ok());
    EXPECT_TRUE(hw_.page_resident(e.eid, e.data_addr));
    CoreState core;
    ASSERT_TRUE(hw_.eenter(ctx, core, e.eid, e.tcs_addr).ok());
    Bytes buf(kPageSize);
    ASSERT_TRUE(hw_.enclave_read(ctx, core, e.data_addr, buf).ok());
    EXPECT_EQ(buf[100], 0xd0);
    ASSERT_TRUE(hw_.eexit(ctx, core).ok());
  });
}

TEST_F(SgxHardwareTest, EldbRejectsReplayTamperAndRollback) {
  run([&](sim::ThreadCtx& ctx) {
    BuiltEnclave e = build_enclave(ctx, hw_);
    uint64_t va = *hw_.epa(ctx);
    auto ev1 = hw_.ewb(ctx, e.eid, e.data_addr, va, 0);
    ASSERT_TRUE(ev1.ok());
    // Tampered ciphertext.
    EvictedPage bad = *ev1;
    bad.ciphertext[17] ^= 1;
    EXPECT_EQ(hw_.eldb(ctx, bad).code(), ErrorCode::kIntegrityViolation);
    // Legit load succeeds, then replay of the same blob fails (VA consumed).
    ASSERT_TRUE(hw_.eldb(ctx, *ev1).ok());
    EXPECT_EQ(hw_.eldb(ctx, *ev1).code(), ErrorCode::kFailedPrecondition);
    // Evict again: old (stale) blob must not load (version rotated).
    auto ev2 = hw_.ewb(ctx, e.eid, e.data_addr, va, 1);
    ASSERT_TRUE(ev2.ok());
    EXPECT_EQ(hw_.eldb(ctx, *ev1).code(), ErrorCode::kIntegrityViolation);
    ASSERT_TRUE(hw_.eldb(ctx, *ev2).ok());
  });
}

TEST_F(SgxHardwareTest, EvictedPageCannotLoadOnAnotherMachine) {
  // The premise of the whole paper (Difference-1): an OS-made "checkpoint"
  // of enclave memory via EWB is cryptographically bound to one CPU.
  SgxHardware other(exec_, sim::default_cost_model(), Drbg(to_bytes("hw2")),
                    HardwareConfig{.machine_name = "m1", .epc_pages = 64});
  run([&](sim::ThreadCtx& ctx) {
    BuiltEnclave e = build_enclave(ctx, hw_);
    uint64_t va = *hw_.epa(ctx);
    auto evicted = hw_.ewb(ctx, e.eid, e.data_addr, va, 0);
    ASSERT_TRUE(evicted.ok());
    // Rebuild the same enclave + VA on the other machine, then try ELDB.
    BuiltEnclave e2 = build_enclave(ctx, other);
    uint64_t va2 = *other.epa(ctx);
    EvictedPage foreign = *evicted;
    foreign.eid = e2.eid;
    foreign.va_page = va2;
    // Give the target a VA slot holding the right version (the OS can write
    // whatever it likes into its own bookkeeping; the MAC still kills it).
    auto dummy = other.ewb(ctx, e2.eid, e2.data_addr, va2, 0);
    ASSERT_TRUE(dummy.ok());
    foreign.va_slot = 0;
    foreign.version = dummy->version;
    EXPECT_EQ(other.eldb(ctx, foreign).code(), ErrorCode::kIntegrityViolation);
  });
}

TEST_F(SgxHardwareTest, DemandPagingFaultHandlerRestoresEvictedPage) {
  run([&](sim::ThreadCtx& ctx) {
    BuiltEnclave e = build_enclave(ctx, hw_);
    uint64_t va = *hw_.epa(ctx);
    auto evicted = hw_.ewb(ctx, e.eid, e.data_addr, va, 0);
    ASSERT_TRUE(evicted.ok());
    int faults = 0;
    hw_.set_fault_handler(
        [&](sim::ThreadCtx& c, EnclaveId eid, uint64_t lin) {
          ++faults;
          EXPECT_EQ(lin, e.data_addr);
          return hw_.eldb(c, *evicted).ok() && eid == e.eid;
        });
    CoreState core;
    ASSERT_TRUE(hw_.eenter(ctx, core, e.eid, e.tcs_addr).ok());
    Bytes buf(8);
    EXPECT_TRUE(hw_.enclave_read(ctx, core, e.data_addr, buf).ok());
    EXPECT_EQ(faults, 1);
    ASSERT_TRUE(hw_.eexit(ctx, core).ok());
    hw_.set_fault_handler(nullptr);
  });
}

TEST_F(SgxHardwareTest, EpcExhaustionReported) {
  run([&](sim::ThreadCtx& ctx) {
    // 64-page EPC; each enclave takes 1 SECS + 8 pages. The 8th ecreate/eadd
    // sequence must eventually hit RESOURCE_EXHAUSTED.
    Status last = OkStatus();
    for (int i = 0; i < 10 && last.ok(); ++i) {
      auto eid = hw_.ecreate(ctx, kBase, 16 * kPageSize, 1, 1);
      if (!eid.ok()) {
        last = eid.status();
        break;
      }
      for (int p = 0; p < 8 && last.ok(); ++p) {
        last = hw_.eadd(ctx, *eid, kBase + p * kPageSize, PageType::kReg,
                        Perms::rw(), Bytes{});
      }
    }
    EXPECT_EQ(last.code(), ErrorCode::kResourceExhausted);
  });
}

TEST_F(SgxHardwareTest, ReportAndGetKey) {
  run([&](sim::ThreadCtx& ctx) {
    BuiltEnclave a = build_enclave(ctx, hw_);
    CoreState core;
    // EREPORT/EGETKEY only work in enclave mode.
    TargetInfo self{hw_.secs(a.eid)->mrenclave};
    EXPECT_FALSE(hw_.ereport(ctx, core, self, to_bytes("x")).ok());
    EXPECT_FALSE(hw_.egetkey(ctx, core, KeyName::kReport).ok());

    ASSERT_TRUE(hw_.eenter(ctx, core, a.eid, a.tcs_addr).ok());
    auto rep = hw_.ereport(ctx, core, self, to_bytes("binding-data"));
    ASSERT_TRUE(rep.ok());
    auto key = hw_.egetkey(ctx, core, KeyName::kReport);
    ASSERT_TRUE(key.ok());
    // The report targeted at ourselves verifies with our report key.
    EXPECT_EQ(crypto::hmac_sha256(*key, rep->serialize_body()), rep->mac);
    // Seal keys are per-signer and stable.
    auto seal1 = hw_.egetkey(ctx, core, KeyName::kSeal);
    auto seal2 = hw_.egetkey(ctx, core, KeyName::kSeal);
    EXPECT_EQ(*seal1, *seal2);
    ASSERT_TRUE(hw_.eexit(ctx, core).ok());
  });
}

TEST_F(SgxHardwareTest, QuotingEnclaveAndAttestationService) {
  run([&](sim::ThreadCtx& ctx) {
    QuotingEnclave qe(hw_, Drbg(to_bytes("qe")));
    AttestationService ias(Drbg(to_bytes("ias")));
    ias.register_platform(qe.platform(), qe.platform_pk());

    BuiltEnclave a = build_enclave(ctx, hw_);
    CoreState core;
    ASSERT_TRUE(hw_.eenter(ctx, core, a.eid, a.tcs_addr).ok());
    auto rep = hw_.ereport(ctx, core, qe.target_info(), to_bytes("chan-bind"));
    ASSERT_TRUE(rep.ok());
    ASSERT_TRUE(hw_.eexit(ctx, core).ok());

    auto quote = qe.quote(ctx, *rep);
    ASSERT_TRUE(quote.ok());
    AttestationVerdict v = ias.verify(ctx, *quote, to_bytes("nonce1"));
    EXPECT_TRUE(v.ok);
    EXPECT_EQ(v.mrenclave, hw_.secs(a.eid)->mrenclave);
    EXPECT_EQ(to_string(v.report_data), "chan-bind");
    EXPECT_TRUE(AttestationService::check_verdict(v, ias.service_pk()));

    // A report MAC'd for a different target (not the QE) is refused.
    ASSERT_TRUE(hw_.eenter(ctx, core, a.eid, a.tcs_addr).ok());
    auto rep_self =
        hw_.ereport(ctx, core, TargetInfo{hw_.secs(a.eid)->mrenclave},
                    to_bytes("x"));
    ASSERT_TRUE(hw_.eexit(ctx, core).ok());
    EXPECT_FALSE(qe.quote(ctx, *rep_self).ok());

    // Quotes from unregistered platforms fail.
    SgxHardware rogue(exec_, sim::default_cost_model(), Drbg(to_bytes("rg")),
                      HardwareConfig{.machine_name = "rogue", .epc_pages = 64});
    QuotingEnclave rogue_qe(rogue, Drbg(to_bytes("rq")));
    BuiltEnclave r = build_enclave(ctx, rogue);
    CoreState rc;
    ASSERT_TRUE(rogue.eenter(ctx, rc, r.eid, r.tcs_addr).ok());
    auto rrep = rogue.ereport(ctx, rc, rogue_qe.target_info(), to_bytes("y"));
    ASSERT_TRUE(rogue.eexit(ctx, rc).ok());
    auto rquote = rogue_qe.quote(ctx, *rrep);
    ASSERT_TRUE(rquote.ok());
    EXPECT_FALSE(ias.verify(ctx, *rquote, to_bytes("n")).ok);
  });
}

TEST_F(SgxHardwareTest, QuoteSerializationRoundTrip) {
  run([&](sim::ThreadCtx& ctx) {
    QuotingEnclave qe(hw_, Drbg(to_bytes("qe")));
    BuiltEnclave a = build_enclave(ctx, hw_);
    CoreState core;
    ASSERT_TRUE(hw_.eenter(ctx, core, a.eid, a.tcs_addr).ok());
    auto rep = hw_.ereport(ctx, core, qe.target_info(), to_bytes("data"));
    ASSERT_TRUE(hw_.eexit(ctx, core).ok());
    auto quote = qe.quote(ctx, *rep);
    ASSERT_TRUE(quote.ok());
    Bytes wire = quote->serialize();
    auto back = Quote::deserialize(wire);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->platform, quote->platform);
    EXPECT_EQ(back->report.mrenclave, quote->report.mrenclave);
    EXPECT_EQ(back->signature, quote->signature);
    EXPECT_FALSE(Quote::deserialize(to_bytes("junk")).ok());
  });
}

// ---- §VII-B proposed instructions -----------------------------------------

TEST_F(SgxHardwareTest, HardwareAssistedMigrationMovesEnclaveAcrossMachines) {
  SgxHardware target(exec_, sim::default_cost_model(), Drbg(to_bytes("t")),
                     HardwareConfig{.machine_name = "m1", .epc_pages = 64,
                                    .migration_ext = true});
  run([&](sim::ThreadCtx& ctx) {
    BuiltEnclave e = build_enclave(ctx, hw_);
    // Mutate state + CSSA so there is something non-initial to migrate.
    CoreState core;
    ASSERT_TRUE(hw_.eenter(ctx, core, e.eid, e.tcs_addr).ok());
    ASSERT_TRUE(hw_.enclave_write(ctx, core, e.data_addr,
                                  to_bytes("live state!")).ok());
    ASSERT_TRUE(hw_.aex(ctx, core, to_bytes("mid-computation")).ok());
    EXPECT_EQ(*hw_.debug_read_cssa_for_test(e.eid, e.tcs_addr), 1u);

    // Both control enclaves agreed on migration keys; install via EPUTKEY.
    Bytes ek = Drbg(to_bytes("mk")).generate(32);
    Bytes mk = Drbg(to_bytes("mm")).generate(32);
    ASSERT_TRUE(hw_.eputkey(ctx, ek, mk).ok());
    ASSERT_TRUE(target.eputkey(ctx, ek, mk).ok());

    // Freeze; export SECS and every page; compute the state hash trailer.
    ASSERT_TRUE(hw_.emigrate(ctx, e.eid).ok());
    EXPECT_EQ(hw_.eenter(ctx, core, e.eid, e.tcs_addr).status().code(),
              ErrorCode::kAborted);  // frozen
    auto msecs = hw_.emigrate_export_secs(ctx, e.eid);
    ASSERT_TRUE(msecs.ok());
    std::vector<SgxHardware::MigratedPage> pages;
    for (uint64_t lin : hw_.resident_pages(e.eid)) {
      auto p = hw_.eswpout(ctx, e.eid, lin);
      ASSERT_TRUE(p.ok());
      pages.push_back(*p);
    }
    auto trailer = hw_.emigrate_state_hash(ctx, e.eid);
    ASSERT_TRUE(trailer.ok());

    // Import on the target.
    auto teid = target.emigrate_import_secs(ctx, *msecs);
    ASSERT_TRUE(teid.ok());
    for (const auto& p : pages) ASSERT_TRUE(target.eswpin(ctx, *teid, p).ok());
    ASSERT_TRUE(target.emigratedone(ctx, *teid, trailer->first,
                                    trailer->second).ok());

    // The enclave is live on the target with CSSA and data intact —
    // transparently, with no control-thread software at all.
    EXPECT_EQ(*target.debug_read_cssa_for_test(*teid, e.tcs_addr), 1u);
    CoreState tcore;
    auto saved = target.eresume(ctx, tcore, *teid, e.tcs_addr);
    ASSERT_TRUE(saved.ok());
    EXPECT_EQ(to_string(*saved), "mid-computation");
    Bytes buf(11);
    ASSERT_TRUE(target.enclave_read(ctx, tcore, e.data_addr, buf).ok());
    EXPECT_EQ(to_string(buf), "live state!");
    ASSERT_TRUE(target.eexit(ctx, tcore).ok());
  });
}

TEST_F(SgxHardwareTest, EmigratedoneDetectsMissingOrTamperedPages) {
  SgxHardware target(exec_, sim::default_cost_model(), Drbg(to_bytes("t")),
                     HardwareConfig{.machine_name = "m1", .epc_pages = 64,
                                    .migration_ext = true});
  run([&](sim::ThreadCtx& ctx) {
    BuiltEnclave e = build_enclave(ctx, hw_);
    Bytes ek = Drbg(to_bytes("mk")).generate(32);
    Bytes mk = Drbg(to_bytes("mm")).generate(32);
    ASSERT_TRUE(hw_.eputkey(ctx, ek, mk).ok());
    ASSERT_TRUE(target.eputkey(ctx, ek, mk).ok());
    ASSERT_TRUE(hw_.emigrate(ctx, e.eid).ok());
    auto msecs = hw_.emigrate_export_secs(ctx, e.eid);
    std::vector<SgxHardware::MigratedPage> pages;
    for (uint64_t lin : hw_.resident_pages(e.eid))
      pages.push_back(*hw_.eswpout(ctx, e.eid, lin));
    auto trailer = hw_.emigrate_state_hash(ctx, e.eid);

    // Tampered page is rejected at ESWPIN.
    auto teid = target.emigrate_import_secs(ctx, *msecs);
    ASSERT_TRUE(teid.ok());
    SgxHardware::MigratedPage bad = pages[0];
    bad.ciphertext[5] ^= 1;
    EXPECT_EQ(target.eswpin(ctx, *teid, bad).code(),
              ErrorCode::kIntegrityViolation);
    // Dropping a page is caught by EMIGRATEDONE.
    for (size_t i = 0; i + 1 < pages.size(); ++i)
      ASSERT_TRUE(target.eswpin(ctx, *teid, pages[i]).ok());
    EXPECT_EQ(target.emigratedone(ctx, *teid, trailer->first, trailer->second)
                  .code(),
              ErrorCode::kIntegrityViolation);
  });
}

TEST_F(SgxHardwareTest, MigrationExtRequiresOptIn) {
  SgxHardware vanilla(exec_, sim::default_cost_model(), Drbg(to_bytes("v")),
                      HardwareConfig{.machine_name = "v", .epc_pages = 64,
                                     .migration_ext = false});
  run([&](sim::ThreadCtx& ctx) {
    Bytes k = Drbg(to_bytes("k")).generate(32);
    EXPECT_EQ(vanilla.eputkey(ctx, k, k).code(),
              ErrorCode::kFailedPrecondition);
    EXPECT_EQ(vanilla.emigrate(ctx, 1).code(), ErrorCode::kFailedPrecondition);
  });
}

}  // namespace
}  // namespace mig::sgx
