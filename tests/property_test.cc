// Property-style tests (parameterized sweeps):
//  * migration preserves enclave state for any worker count x cipher,
//    with workers busy mid-ecall at checkpoint time;
//  * in-enclave CSSA tracking matches the hardware truth across randomized
//    AEX patterns (seed sweep);
//  * the guest driver survives EPC pressure (eviction + demand paging);
//  * arbitrarily mutated checkpoints are always rejected cleanly.
#include <gtest/gtest.h>

#include "guestos/guest_os.h"
#include "hv/machine.h"
#include "migration/owner.h"
#include "migration/session.h"
#include "sdk/builder.h"
#include "sdk/host.h"
#include "sim/fault.h"
#include "sim/rng.h"
#include "store/counter_service.h"
#include "store/snapshot_store.h"
#include "util/serde.h"

namespace mig {
namespace {

constexpr uint64_t kEcallBump = 1;     // args: u64 delta, u64 work_ns
constexpr uint64_t kEcallSum = 2;

std::shared_ptr<sdk::EnclaveProgram> make_prog() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("prop-counter");
  prog->add_ecall(kEcallBump, "bump", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t delta = r.u64();
    uint64_t steps = r.u64();
    while (f.pc() < steps) {
      env.work(100'000);  // 0.1 ms per step: AEX every ~10 steps
      f.step();
    }
    uint64_t off = env.layout().data_off;
    env.write_u64(off, env.read_u64(off) + delta);
    return OkStatus();
  });
  prog->add_ecall(kEcallSum, "sum", [](sdk::EnclaveEnv& env, sdk::Frame&) {
    Writer w;
    w.u64(env.read_u64(env.layout().data_off));
    env.set_retval(w.take());
    return OkStatus();
  });
  return prog;
}

struct PropBed {
  hv::World world{4};
  hv::Machine* source = &world.add_machine("src");
  hv::Machine* target = &world.add_machine("dst");
  hv::Vm vm{hv::VmConfig{}, hv::DirtyModel{}};
  guestos::GuestOs guest{*source, vm};
  guestos::Process* process = &guest.create_process("app");
  crypto::Drbg rng{to_bytes("prop")};
  crypto::SigKeyPair signer = [] {
    crypto::Drbg r(to_bytes("dev"));
    return crypto::sig_keygen(r);
  }();
  migration::EnclaveOwner owner{world.ias(), crypto::Drbg(to_bytes("own"))};

  std::unique_ptr<sdk::EnclaveHost> make_host(uint64_t workers) {
    sdk::BuildInput in;
    in.program = make_prog();
    in.layout.num_workers = workers;
    sdk::BuildOutput built =
        sdk::build_enclave_image(in, signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    return std::make_unique<sdk::EnclaveHost>(guest, *process,
                                              std::move(built), world.ias(),
                                              rng.fork(to_bytes("h")));
  }

  void provision(sim::ThreadCtx& ctx, sdk::EnclaveHost& host) {
    auto ch = world.make_channel();
    world.executor().spawn("owner", [this, c = ch.get()](sim::ThreadCtx& t) {
      owner.serve_one(t, c->b());
    });
    sdk::ControlCmd cmd;
    cmd.type = sdk::ControlCmd::Type::kProvision;
    cmd.channel = ch->a();
    ASSERT_TRUE(host.mailbox().post(ctx, cmd).status.ok());
  }
};

// ---- migration under load: workers x cipher sweep ---------------------------

using MigCase = std::tuple<int, crypto::CipherAlg>;

class MigrationSweep : public ::testing::TestWithParam<MigCase> {};

TEST_P(MigrationSweep, BusyEnclaveMigratesAndEveryBumpLands) {
  auto [workers, cipher] = GetParam();
  PropBed bed;
  auto host = bed.make_host(workers);
  uint64_t expected = 0;
  std::vector<Status> worker_status(workers, OkStatus());
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    // Every worker grinds a long, resumable ecall.
    std::vector<std::unique_ptr<sim::Event>> done;
    for (int wi = 0; wi < workers; ++wi) {
      done.push_back(std::make_unique<sim::Event>(bed.world.executor()));
      sim::Event* ev = done.back().get();
      expected += 10 + wi;
      bed.process->spawn_thread(
          "w" + std::to_string(wi),
          [&, wi, ev](sim::ThreadCtx& wctx) {
            Writer w;
            w.u64(10 + wi);
            w.u64(30 + 7 * wi);  // 3-5 ms of stepped work
            auto r = host->ecall(wctx, wi, kEcallBump, w.data());
            worker_status[wi] = r.status();
            ev->set(wctx);
          },
          /*daemon=*/true);
    }
    ctx.sleep(1'000'000);  // all workers mid-ecall

    migration::EnclaveMigrator migrator(bed.world);
    migration::EnclaveMigrateOptions opts;
    opts.cipher = cipher;
    auto blob = migrator.prepare(ctx, *host, opts);
    ASSERT_TRUE(blob.ok()) << blob.status().to_string();
    auto inst = host->detach_instance();
    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    ASSERT_TRUE(migrator.restore(ctx, *host, *bed.source, inst,
                                 std::move(*blob), opts).ok());
    for (auto& ev : done) ev->wait(ctx);  // all ecalls complete on the target

    auto got = host->ecall(ctx, 0, kEcallSum, {});
    ASSERT_TRUE(got.ok());
    Reader r(*got);
    EXPECT_EQ(r.u64(), expected);
  });
  ASSERT_TRUE(bed.world.executor().run());
  for (int wi = 0; wi < workers; ++wi)
    EXPECT_TRUE(worker_status[wi].ok()) << worker_status[wi].to_string();
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndCiphers, MigrationSweep,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(crypto::CipherAlg::kRc4,
                                         crypto::CipherAlg::kChaCha20,
                                         crypto::CipherAlg::kAes128CbcNi)),
    [](const auto& info) {
      return std::to_string(std::get<0>(info.param)) + "w_" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

// ---- CSSA tracking property --------------------------------------------------

class CssaSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CssaSeedSweep, TrackedCssaAlwaysMatchesHardwareTruth) {
  // Randomized ecall lengths => randomized AEX counts. After every completed
  // ecall the hardware CSSA must be 0 again (every AEX matched by ERESUME),
  // and mid-migration the control thread's inferred values must let the
  // restore verify (exercised via a full migration at a random point).
  sim::Rng rnd(GetParam());
  PropBed bed;
  auto host = bed.make_host(2);
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    for (int round = 0; round < 5; ++round) {
      Writer w;
      w.u64(1);
      w.u64(rnd.range(1, 40));  // 0.1 - 4 ms => 0..4 AEXes
      auto r = host->ecall(ctx, rnd.below(2), kEcallBump, w.data());
      ASSERT_TRUE(r.ok());
      for (uint64_t wi = 0; wi < 2; ++wi) {
        auto cssa = bed.source->hw().debug_read_cssa_for_test(
            host->instance()->eid,
            sdk::kEnclaveBase + host->layout().tcs_offset(wi));
        ASSERT_TRUE(cssa.ok());
        EXPECT_EQ(*cssa, 0u) << "round " << round << " worker " << wi;
      }
    }
  });
  ASSERT_TRUE(bed.world.executor().run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CssaSeedSweep,
                         ::testing::Values(1, 7, 42, 1337, 0xdeadbeef));

// ---- EPC pressure -------------------------------------------------------------

TEST(EpcPressure, DriverEvictsAndFaultsBackUnderTinyEpc) {
  hv::World world(4);
  // 96 pages of EPC: far too small for three enclaves at once.
  hv::Machine& machine = world.add_machine("tiny", /*epc_pages=*/96);
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  guestos::GuestOs guest(machine, vm);
  guestos::Process& proc = guest.create_process("app");
  crypto::Drbg rng(to_bytes("epc"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair signer = crypto::sig_keygen(srng);

  std::vector<std::unique_ptr<sdk::EnclaveHost>> hosts;
  for (int i = 0; i < 3; ++i) {
    sdk::BuildInput in;
    in.program = make_prog();
    in.layout.num_workers = 2;
    in.layout.heap_pages = 16;
    sdk::BuildOutput built =
        sdk::build_enclave_image(in, signer, world.ias().service_pk(), rng);
    hosts.push_back(std::make_unique<sdk::EnclaveHost>(
        guest, proc, std::move(built), world.ias(), rng.fork(to_bytes("h"))));
  }
  world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    for (auto& h : hosts) ASSERT_TRUE(h->create(ctx).ok());
    // All three enclaves keep working; their pages fault in and out.
    for (int round = 0; round < 10; ++round) {
      for (auto& h : hosts) {
        Writer w;
        w.u64(1);
        w.u64(2);
        ASSERT_TRUE(h->ecall(ctx, round % 2, kEcallBump, w.data()).ok());
      }
    }
    for (auto& h : hosts) {
      auto r = h->ecall(ctx, 0, kEcallSum, {});
      ASSERT_TRUE(r.ok());
      Reader rd(*r);
      EXPECT_EQ(rd.u64(), 10u);
    }
  });
  ASSERT_TRUE(world.executor().run());
  EXPECT_GT(guest.driver().evictions(), 0u);
  EXPECT_GT(guest.driver().faults_served(), 0u);
}

// ---- migration atomicity under random faults ----------------------------------
//
// Property: whatever single scripted network fault hits whichever link at
// whatever moment, after the dust settles there is EXACTLY ONE place the
// enclave can run — or none, but then only because the source provably
// destroyed itself (commit point crossed) and every pending caller got a
// clean kAborted instead of a hang. Never two runnable copies; never a
// silent wedge.

class FaultAtomicitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultAtomicitySweep, ExactlyOneRunnableEnclaveEverSurvives) {
  sim::Rng rnd(GetParam());
  // Random fault site: which link, which direction, what kind, which message.
  const int via = rnd.below(4);         // 0/1: migration link, 2/3: handshake
  const bool a_to_b = (via % 2) == 0;
  const int kind = rnd.below(3);
  const uint64_t nth = rnd.range(1, via < 2 ? 12 : 2);
  const size_t offset = rnd.below(256);

  PropBed bed;
  auto host = bed.make_host(2);
  sim::FaultPlan plan;
  switch (kind) {
    case 0: plan.drop_message(nth); break;
    case 1: plan.sever_at_message(nth); break;
    case 2: plan.corrupt_message(nth, offset); break;
  }

  Result<hv::MigrationReport> run = Error(ErrorCode::kInternal, "unset");
  Status probe = OkStatus();
  uint64_t counter = 0;
  bool has_instance = false, lost = false, on_source = false, on_target = false;
  uint64_t started_ns = 0, finished_ns = 0;

  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    Writer w;
    w.u64(42);
    w.u64(1);
    ASSERT_TRUE(host->ecall(ctx, 0, kEcallBump, w.data()).ok());

    migration::VmMigrationSession session(
        bed.world, bed.vm, bed.guest, *bed.source, *bed.target,
        migration::VmMigrationSession::Options{});
    session.manage(*host);
    int next_channel = 0;
    const int wanted = via < 2 ? 0 : 1;
    bed.world.set_channel_interceptor([&](sim::Channel& ch) {
      if (next_channel++ == wanted)
        plan.install(a_to_b ? ch.a_to_b() : ch.b_to_a());
    });
    started_ns = ctx.now();
    run = session.run(ctx);
    finished_ns = ctx.now();

    lost = host->instance_lost();
    has_instance = host->instance() != nullptr;
    if (has_instance) {
      on_source = host->instance()->machine == bed.source;
      on_target = host->instance()->machine == bed.target;
    }
    auto got = host->ecall(ctx, 0, kEcallSum, {});
    probe = got.status();
    if (got.ok()) {
      Reader r(*got);
      counter = r.u64();
    }
  });
  // Invariant 0: no virtual deadlock, bounded virtual time.
  ASSERT_TRUE(bed.world.executor().run())
      << "deadlock (via=" << via << " kind=" << kind << " nth=" << nth << ")";
  EXPECT_LT(finished_ns - started_ns, 400'000'000'000ull);

  SCOPED_TRACE("via=" + std::to_string(via) + " kind=" + std::to_string(kind) +
               " nth=" + std::to_string(nth));
  if (probe.ok()) {
    // A survivor exists: it lives on exactly one machine with intact state.
    ASSERT_TRUE(has_instance);
    EXPECT_TRUE(on_source != on_target);
    EXPECT_FALSE(lost);
    EXPECT_EQ(counter, 42u);
    // A migration reported successful must have committed to the target.
    if (run.ok()) {
      EXPECT_TRUE(on_target);
    }
    // A rollback must have landed back on the source, never half-way.
    if (!run.ok() && on_source) {
      EXPECT_TRUE(bed.vm.running());
    }
  } else {
    // No survivor: only legal after the commit point, with a clean abort for
    // every later caller (the key died with the source — no live key without
    // a runnable enclave).
    EXPECT_FALSE(run.ok());
    EXPECT_EQ(probe.code(), ErrorCode::kAborted) << probe.to_string();
    EXPECT_TRUE(lost);
    EXPECT_FALSE(has_instance);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultAtomicitySweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42, 99,
                                           1337, 4096, 0xfa17));

// ---- at-most-one-live-lease interleavings -----------------------------------
//
// Property: across ANY interleaving of {live-migrate, snapshot, crash,
// restore} — including fork attempts that restore a snapshot into a second
// enclave of the same identity while the first is still running — at most
// one instance ever holds a live lease (i.e. can still seal at the current
// counter epoch). Stale forks fence themselves at their next counter
// interaction; the counter service never goes backwards.

class LeaseInterleavingSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LeaseInterleavingSweep, AtMostOneInstanceEverHoldsTheLease) {
  sim::Rng rnd(GetParam());
  hv::World world{4};
  hv::Machine& m_a = world.add_machine("site-a");
  hv::Machine& m_b = world.add_machine("site-b");
  hv::Machine& m_c = world.add_machine("site-c");
  hv::Vm vm_a{hv::VmConfig{}, hv::DirtyModel{}};
  hv::Vm vm_b{hv::VmConfig{}, hv::DirtyModel{}};
  guestos::GuestOs guest_a{m_a, vm_a};
  guestos::GuestOs guest_b{m_b, vm_b};
  guestos::Process* proc_a = &guest_a.create_process("app-a");
  guestos::Process* proc_b = &guest_b.create_process("app-b");
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner{world.ias(), crypto::Drbg(to_bytes("own"))};
  store::CounterService counters{world.ias(), crypto::Drbg(to_bytes("ctr"))};
  store::SealedSnapshotStore snapshots;

  // Two hosts built from identically-seeded builds => identical MRENCLAVE:
  // host B is a genuine fork vessel for host A's snapshots.
  auto build = [&]() {
    sdk::BuildInput in;
    in.program = make_prog();
    in.layout.num_workers = 2;
    in.counter_service_pk = counters.public_key();
    crypto::Drbg r(to_bytes("twin"));
    return sdk::build_enclave_image(in, signer, world.ias().service_pk(), r);
  };
  sdk::BuildOutput built_a = build();
  sdk::BuildOutput built_b = build();
  ASSERT_TRUE(built_a.image.measure() == built_b.image.measure());
  owner.enroll(built_a.image.measure(), built_a.owner);
  sdk::EnclaveHost host_a(guest_a, *proc_a, std::move(built_a), world.ias(),
                          crypto::Drbg(to_bytes("ha")));
  sdk::EnclaveHost host_b(guest_b, *proc_b, std::move(built_b), world.ias(),
                          crypto::Drbg(to_bytes("hb")));

  migration::EnclaveMigrator migrator(world);
  migration::EnclaveMigrateOptions opts;
  opts.counter_service = &counters;
  // Guest A hops between sites a and c on live migrations; B stays put.
  hv::Machine* a_cur = &m_a;
  hv::Machine* a_other = &m_c;

  int live = -1;
  world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host_a.create(ctx).ok());
    {
      auto ch = world.make_channel();
      world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
        owner.serve_one(t, c->b());
      });
      sdk::ControlCmd cmd;
      cmd.type = sdk::ControlCmd::Type::kProvision;
      cmd.channel = ch->a();
      ASSERT_TRUE(host_a.mailbox().post(ctx, cmd).status.ok());
    }
    std::vector<Bytes> snaps;
    // A fenced (self-destroyed) instance spins any entered worker forever;
    // the test must not ecall into one. Mailbox commands stay safe.
    std::map<sdk::EnclaveHost*, bool> fenced{{&host_a, false},
                                             {&host_b, false}};
    auto bump = [&](sdk::EnclaveHost& h) {
      Writer w;
      w.u64(1);
      w.u64(2);
      (void)h.ecall(ctx, 0, kEcallBump, w.data());
    };
    for (int step = 0; step < 8; ++step) {
      sdk::EnclaveHost& h = rnd.below(2) == 0 ? host_a : host_b;
      switch (rnd.below(4)) {
        case 0: {  // snapshot (possibly from a stale fork => self-fence)
          if (h.instance() == nullptr) break;
          if (!fenced[&h]) bump(h);
          auto id = migrator.snapshot_to_store(ctx, h, snapshots, opts);
          if (id.ok())
            snaps.push_back(std::move(*id));
          else if (id.status().code() == ErrorCode::kAborted)
            fenced[&h] = true;
          break;
        }
        case 1: {  // crash (only ever with idle workers)
          if (h.instance() == nullptr) break;
          h.crash_instance(ctx);
          fenced[&h] = false;
          break;
        }
        case 2: {  // restore: head or a deliberately stale snapshot id
          if (h.instance() != nullptr || snaps.empty()) break;
          Bytes id;
          if (rnd.below(2) == 0) id = snaps[rnd.below(snaps.size())];
          if (migrator.restore_from_store(ctx, h, snapshots, id, opts).ok())
            fenced[&h] = false;
          break;
        }
        case 3: {  // live-migrate host A between its two sites
          if (&h != &host_a || host_a.instance() == nullptr ||
              host_a.instance_lost())
            break;
          auto blob = migrator.prepare(ctx, host_a, opts);
          if (!blob.ok()) {
            // Only a self-destroyed enclave refuses to checkpoint; prepare
            // already parked the workers, so treat it as fenced for good.
            fenced[&host_a] = true;
            break;
          }
          auto inst = host_a.detach_instance();
          guest_a.set_migration_target(*a_other);
          ASSERT_TRUE(guest_a.resume_enclaves_after_migration(ctx).ok());
          std::swap(a_cur, a_other);  // the guest lives on the new site now
          Status rs = migrator.restore(ctx, host_a, *a_other, inst,
                                       std::move(*blob), opts);
          if (!rs.ok()) {
            // The committed-but-refused-advance case leaves a fenced target
            // instance behind; never enter it again.
            fenced[&host_a] = true;
            if (inst != nullptr)
              (void)host_a.destroy_detached(ctx, *a_other, std::move(inst));
          }
          break;
        }
      }
    }
    // Probe: a lease holder is an instance that can still seal. Forks that
    // lost the race fence themselves right here at the latest.
    live = 0;
    for (sdk::EnclaveHost* h : {&host_a, &host_b}) {
      if (h->instance() == nullptr || h->instance_lost()) continue;
      if (migrator.snapshot_to_store(ctx, *h, snapshots, opts).ok()) ++live;
    }
  });
  ASSERT_TRUE(world.executor().run()) << "virtual deadlock in interleaving";
  EXPECT_GE(live, 0);
  EXPECT_LE(live, 1);
  // The audited counter never moves backwards (single identity throughout).
  uint64_t last = 0;
  for (const store::CounterAuditEntry& e : counters.audit_log()) {
    EXPECT_GE(e.counter, last);
    last = e.counter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeaseInterleavingSweep,
                         ::testing::Values(1, 2, 3, 7, 11, 23, 42, 99, 1337,
                                           0xabcde));

// ---- checkpoint fuzzing ---------------------------------------------------------

TEST(CheckpointFuzz, MutatedBlobsAlwaysRejectedCleanly) {
  PropBed bed;
  auto host = bed.make_host(2);
  bed.world.executor().spawn("test", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    migration::EnclaveMigrator migrator(bed.world);
    auto blob = migrator.prepare(ctx, *host, {});
    ASSERT_TRUE(blob.ok());
    auto inst = host->detach_instance();
    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    // Keep the source alive so each attempt can request the key; only one
    // key request will be served, so we restore with the same target enclave
    // created once and mutate the blob for repeated kRestore commands.
    ASSERT_TRUE(host->create(ctx).ok());
    sim::Rng rnd(99);
    for (int trial = 0; trial < 40; ++trial) {
      Bytes bad = *blob;
      switch (rnd.below(3)) {
        case 0:  // bit flip
          bad[rnd.below(bad.size())] ^= 1 << rnd.below(8);
          break;
        case 1:  // truncation
          bad.resize(rnd.below(bad.size()));
          break;
        case 2: {  // splice random garbage
          size_t at = rnd.below(bad.size());
          Bytes junk = sim::Rng(trial).bytes(rnd.range(1, 64));
          std::copy(junk.begin(), junk.end(),
                    bad.begin() + std::min(at, bad.size() - junk.size()));
          break;
        }
      }
      if (bad == *blob) continue;
      // Feed it through kRestore with a fresh channel; the source will only
      // serve once, so use a pre-shared channel-free variant: the inner
      // integrity check runs before any key exchange when the blob cannot
      // even parse... exercise via a channel that replays a refusal.
      auto ch = bed.world.make_channel();
      bed.world.executor().spawn("serve", [&, c = ch.get()](sim::ThreadCtx& t) {
        sdk::ControlCmd serve;
        serve.type = sdk::ControlCmd::Type::kServeKey;
        serve.channel = c->a();
        (void)inst->mailbox->post(t, serve);
      });
      sdk::ControlCmd restore;
      restore.type = sdk::ControlCmd::Type::kRestore;
      restore.blob = bad;
      restore.channel = ch->b();
      sdk::ControlReply r = host->mailbox().post(ctx, restore);
      EXPECT_FALSE(r.status.ok()) << "trial " << trial;
      if (trial == 0) {
        // After the first (served) exchange the source self-destroyed; all
        // later attempts fail at the key exchange — equally clean.
        EXPECT_EQ(r.status.code(), ErrorCode::kIntegrityViolation);
      }
    }
  });
  ASSERT_TRUE(bed.world.executor().run());
}

}  // namespace
}  // namespace mig
