// Downtime-budget attribution tests: the span-tree analyzer must re-derive
// the engine's own numbers from the trace *exactly* — attr.downtime_ns equals
// migration.downtime_ns byte-for-byte, the phase partition sums to total_ns,
// the downtime partition sums to downtime_ns — and the whole ledger must be
// byte-identical across identically seeded runs. Synthetic traces pin the
// analyzer's folding rules; full-stack runs pin the engine agreement.
#include <gtest/gtest.h>

#include "migration/session.h"
#include "obs/attribution.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/counter_service.h"
#include "util/serde.h"

namespace mig {
namespace {

// ---------------------------------------------------------------------------
// Synthetic traces: hand-built event streams with known answers.

struct FakeCtx {
  uint64_t t = 0;
  uint32_t tid = 1;
  std::string nm = "fake";
  uint64_t now() const { return t; }
  uint32_t id() const { return tid; }
  const std::string& name() const { return nm; }
};

TEST(AttrSynthetic, EmptyTraceFailsPrecondition) {
  obs::ScopedObservation capture;
  auto led = obs::attribute_migration(obs::trace());
  EXPECT_FALSE(led.ok());
  EXPECT_EQ(led.status().code(), ErrorCode::kFailedPrecondition);
}

TEST(AttrSynthetic, UnbalancedTraceIsRejected) {
  obs::ScopedObservation capture;
  obs::trace().end(10, 1);  // stray E with no matching B
  auto led = obs::attribute_migration(obs::trace());
  EXPECT_FALSE(led.ok());
  EXPECT_EQ(led.status().code(), ErrorCode::kInvalidArgument);
}

TEST(AttrSynthetic, ExactPhaseAndDowntimePartition) {
  obs::ScopedObservation capture;
  FakeCtx src{.t = 0, .tid = 1, .nm = "src"};
  FakeCtx helper{.t = 0, .tid = 2, .nm = "ctl"};
  {
    obs::Span<FakeCtx> mig(src, "migrate_source", "hv");
    {
      src.t = 100;
      obs::Span<FakeCtx> round(src, "precopy_round", "hv");
      src.t = 300;  // 200 ns of rounds
    }
    {
      obs::Span<FakeCtx> prep(src, "prepare_enclaves", "hv");
      // A cross-thread checkpoint overlapping the prepare phase.
      helper.t = 310;
      obs::Span<FakeCtx> ckpt(helper, "two_phase_checkpoint", "migration");
      helper.t = 390;
      ckpt.finish();
      src.t = 400;  // 100 ns of prepare
    }
    {
      obs::Span<FakeCtx> stop(src, "stop_and_copy", "hv");  // B at 400
      src.t = 430;
      obs::instant(src, "stop.device_saved", "hv");
      helper.t = 480;
      obs::instant(helper, "stop.final_received", "hv");  // other tid is fine
      src.t = 500;
    }
    obs::instant(src, "vm.resumed", "hv");  // downtime ends at 500
    {
      obs::Span<FakeCtx> wait(src, "wait_restore_report", "hv");
      src.t = 550;  // 50 ns waiting
    }
    src.t = 600;  // 150 ns of gaps -> "other"
  }
  auto led = obs::attribute_migration(obs::trace());
  ASSERT_TRUE(led.ok()) << led.status().to_string();
  EXPECT_TRUE(led->present);
  EXPECT_EQ(led->total_ns, 600u);
  EXPECT_EQ(led->phase_ns("precopy_rounds"), 200u);
  EXPECT_EQ(led->phase_ns("prepare_enclaves"), 100u);
  EXPECT_EQ(led->phase_ns("stop_and_copy"), 100u);
  EXPECT_EQ(led->phase_ns("restore_wait"), 50u);
  EXPECT_EQ(led->phase_ns("postcopy_tail"), 0u);
  EXPECT_EQ(led->phase_ns("other"), 150u);
  // Downtime: stop_and_copy B (400) to vm.resumed (500), split by the
  // device-save / final-received boundary instants.
  EXPECT_EQ(led->downtime_ns, 100u);
  EXPECT_EQ(led->downtime_phase_ns("device_save"), 30u);
  EXPECT_EQ(led->downtime_phase_ns("final_copy"), 50u);
  EXPECT_EQ(led->downtime_phase_ns("device_restore"), 20u);
  // The helper thread's checkpoint shows up as a cross-thread total.
  EXPECT_EQ(led->span_total_ns("checkpoint"), 80u);
  EXPECT_EQ(led->span_total_ns("cssa_replay"), 0u);
}

TEST(AttrSynthetic, MissingBoundaryInstantsFallBackToOnePhase) {
  obs::ScopedObservation capture;
  FakeCtx src{.t = 0, .tid = 1, .nm = "src"};
  {
    obs::Span<FakeCtx> mig(src, "migrate_source", "hv");
    {
      src.t = 10;
      obs::Span<FakeCtx> stop(src, "stop_and_copy", "hv");
      src.t = 75;
    }
    obs::instant(src, "vm.resumed", "hv");
    src.t = 90;
  }
  auto led = obs::attribute_migration(obs::trace());
  ASSERT_TRUE(led.ok());
  EXPECT_EQ(led->downtime_ns, 65u);
  ASSERT_EQ(led->downtime_phases.size(), 1u);
  EXPECT_EQ(led->downtime_phases[0].name, "stop_to_resume");
  EXPECT_EQ(led->downtime_phases[0].ns, 65u);
}

TEST(AttrSynthetic, LastCompleteMigrationWins) {
  obs::ScopedObservation capture;
  FakeCtx src{.t = 0, .tid = 1, .nm = "src"};
  {
    obs::Span<FakeCtx> first(src, "migrate_source", "hv");
    src.t = 1000;  // an earlier (aborted / retried) attempt
  }
  src.t = 5000;
  {
    obs::Span<FakeCtx> second(src, "migrate_source", "hv");
    src.t = 5200;
  }
  auto led = obs::attribute_migration(obs::trace());
  ASSERT_TRUE(led.ok());
  EXPECT_EQ(led->total_ns, 200u);  // the 5000..5200 attempt, not 0..1000
}

// ---------------------------------------------------------------------------
// Full-stack: the ledger agrees with the engine's report exactly.

constexpr uint64_t kEcallAdd = 1;

std::shared_ptr<sdk::EnclaveProgram> make_counter_program() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("attr-counter");
  prog->add_ecall(kEcallAdd, "add", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    env.work(200);
    env.write_u64(env.layout().data_off,
                  env.read_u64(env.layout().data_off) + r.u64());
    return OkStatus();
  });
  return prog;
}

struct AttrRun {
  hv::MigrationReport report;
  uint64_t gauge_attr_downtime = 0;
  uint64_t gauge_mig_downtime = 0;
  uint64_t gauge_attr_total = 0;
  std::string ledger_json;
};

// One seeded end-to-end VM migration under ScopedObservation; post_copy
// selects the flip + demand-pull path (which needs a counter service for the
// epoch fence).
AttrRun run_attributed_migration(bool post_copy) {
  obs::ScopedObservation capture;

  hv::World world(4);
  hv::Machine& source = world.add_machine("source");
  hv::Machine& target = world.add_machine("target");
  hv::Vm vm(hv::VmConfig{},
            post_copy ? hv::DirtyModel{1'600, 40'000} : hv::DirtyModel{});
  guestos::GuestOs guest(source, vm);
  crypto::Drbg rng(to_bytes("attr-bed"));
  crypto::Drbg srng(to_bytes("dev"));
  crypto::SigKeyPair dev_signer = crypto::sig_keygen(srng);
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("owner")));
  store::CounterService counters(world.ias(), crypto::Drbg(to_bytes("ctr")));

  guestos::Process& proc = guest.create_process("app");
  sdk::BuildInput in;
  in.program = make_counter_program();
  in.layout.num_workers = 2;
  if (post_copy) {
    in.layout.heap_pages = 4;
    in.counter_service_pk = counters.public_key();
  }
  sdk::BuildOutput built =
      sdk::build_enclave_image(in, dev_signer, world.ias().service_pk(), rng);
  owner.enroll(built.image.measure(), built.owner);
  auto host = std::make_unique<sdk::EnclaveHost>(
      guest, proc, std::move(built), world.ias(), rng.fork(to_bytes("host")));

  AttrRun out;
  Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
  world.executor().spawn("driver", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    auto ch = world.make_channel();
    world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
      owner.serve_one(t, c->b());
    });
    sdk::ControlCmd cmd;
    cmd.type = sdk::ControlCmd::Type::kProvision;
    cmd.channel = ch->a();
    ASSERT_TRUE(host->mailbox().post(ctx, cmd).status.ok());

    migration::VmMigrationSession::Options opts;
    opts.post_copy = post_copy;
    migration::VmMigrationSession session(world, vm, guest, source, target,
                                          opts);
    session.manage(*host);
    report = session.run(ctx);
    ASSERT_TRUE(report.ok()) << report.status().to_string();
  });
  EXPECT_TRUE(world.executor().run());
  EXPECT_TRUE(report.ok());
  if (report.ok()) out.report = *report;
  out.gauge_attr_downtime = obs::metrics().gauge("attr.downtime_ns");
  out.gauge_mig_downtime = obs::metrics().gauge("migration.downtime_ns");
  out.gauge_attr_total = obs::metrics().gauge("attr.total_ns");
  out.ledger_json = out.report.attribution.json();
  return out;
}

void check_partitions(const obs::AttributionLedger& led) {
  uint64_t phase_sum = 0;
  for (const obs::AttributionPhase& p : led.phases) phase_sum += p.ns;
  EXPECT_EQ(phase_sum, led.total_ns) << "phases must partition total time";
  uint64_t dt_sum = 0;
  for (const obs::AttributionPhase& p : led.downtime_phases) dt_sum += p.ns;
  EXPECT_EQ(dt_sum, led.downtime_ns) << "downtime phases must partition it";
}

TEST(AttrPipeline, LedgerReproducesEngineDowntimeExactly) {
  AttrRun run = run_attributed_migration(/*post_copy=*/false);
  ASSERT_TRUE(run.report.success);
  const obs::AttributionLedger& led = run.report.attribution;
  ASSERT_TRUE(led.present) << "session must attach the ledger when tracing";

  // The acceptance bar: trace-derived downtime equals the engine's, exactly.
  EXPECT_EQ(led.downtime_ns, run.report.downtime_ns);
  EXPECT_EQ(led.total_ns, run.report.total_ns);
  EXPECT_EQ(run.gauge_attr_downtime, run.gauge_mig_downtime);
  EXPECT_EQ(run.gauge_attr_total, run.report.total_ns);
  check_partitions(led);

  // A pre-copy migration has real time in every pipeline phase and none in
  // the post-copy tail.
  EXPECT_GT(led.phase_ns("precopy_rounds"), 0u);
  EXPECT_GT(led.phase_ns("prepare_enclaves"), 0u);
  EXPECT_GT(led.phase_ns("stop_and_copy"), 0u);
  EXPECT_GT(led.phase_ns("restore_wait"), 0u);
  EXPECT_EQ(led.phase_ns("postcopy_tail"), 0u);
  EXPECT_GT(led.span_total_ns("checkpoint"), 0u);
  EXPECT_GT(led.span_total_ns("enclave_restore"), 0u);
}

TEST(AttrPipeline, PostcopyFlipAttributesTheTail) {
  AttrRun run = run_attributed_migration(/*post_copy=*/true);
  ASSERT_TRUE(run.report.success);
  ASSERT_EQ(run.report.postcopy_flipped, 1u);
  const obs::AttributionLedger& led = run.report.attribution;
  ASSERT_TRUE(led.present);
  EXPECT_EQ(led.downtime_ns, run.report.downtime_ns);
  EXPECT_EQ(run.gauge_attr_downtime, run.gauge_mig_downtime);
  check_partitions(led);
  // The flip moves the bulk of the work after resume: the tail phase is
  // populated and the demand pulls show up as a cross-thread total.
  EXPECT_GT(led.phase_ns("postcopy_tail"), 0u);
  EXPECT_GT(led.span_total_ns("postcopy_pull"), 0u);
}

TEST(AttrPipeline, LedgerIsByteIdenticalAcrossIdenticalSeeds) {
  AttrRun first = run_attributed_migration(/*post_copy=*/false);
  AttrRun second = run_attributed_migration(/*post_copy=*/false);
  ASSERT_FALSE(first.ledger_json.empty());
  EXPECT_EQ(first.ledger_json, second.ledger_json);
}

TEST(AttrPipeline, NoLedgerWithoutTracing) {
  // Without a ScopedObservation the session must not attach (or compute) an
  // attribution — present stays false and downstream consumers can tell.
  if (obs::tracing_enabled()) GTEST_SKIP() << "suite runs instrumented";
  hv::World world(4);
  hv::Machine& source = world.add_machine("source");
  hv::Machine& target = world.add_machine("target");
  hv::Vm vm(hv::VmConfig{}, hv::DirtyModel{});
  guestos::GuestOs guest(source, vm);
  Result<hv::MigrationReport> report = Error(ErrorCode::kInternal, "unset");
  world.executor().spawn("driver", [&](sim::ThreadCtx& ctx) {
    migration::VmMigrationSession session(
        world, vm, guest, source, target,
        migration::VmMigrationSession::Options{});
    report = session.run(ctx);
  });
  ASSERT_TRUE(world.executor().run());
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_FALSE(report->attribution.present);
}

}  // namespace
}  // namespace mig
