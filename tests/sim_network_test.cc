// Tests for the simulated network: latency/bandwidth accounting, ordering,
// virtual-sized bulk sends, taps (eavesdropping/tampering) and link failure.
#include <gtest/gtest.h>

#include "sim/network.h"

namespace mig::sim {
namespace {

TEST(Network, DeliveryChargesLatencyAndBandwidth) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  const CostModel& cm = default_cost_model();
  uint64_t recv_time = 0;
  Bytes payload(10'000, 0xab);
  exec.spawn("sender", [&](ThreadCtx& ctx) {
    ch.a().send(ctx, payload);
  });
  exec.spawn("receiver", [&](ThreadCtx& ctx) {
    Bytes m = ch.b().recv(ctx);
    EXPECT_EQ(m, payload);
    recv_time = ctx.now();
  });
  ASSERT_TRUE(exec.run());
  uint64_t expect = per_byte_x100(cm.net_ns_per_byte_x100, payload.size()) +
                    cm.net_latency_ns;
  EXPECT_GE(recv_time, expect);
  EXPECT_LE(recv_time, expect + 10'000);
}

TEST(Network, MessagesArriveInOrder) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  std::vector<int> received;
  exec.spawn("sender", [&](ThreadCtx& ctx) {
    for (int i = 0; i < 5; ++i) {
      ch.a().send(ctx, Bytes{static_cast<uint8_t>(i)});
      ctx.work(1'000);
    }
  });
  exec.spawn("receiver", [&](ThreadCtx& ctx) {
    for (int i = 0; i < 5; ++i) received.push_back(ch.b().recv(ctx)[0]);
  });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Network, SendSizedChargesVirtualBytesWithoutMaterializing) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  uint64_t recv_time = 0;
  constexpr uint64_t kBulk = 100ull << 20;  // 100 MB, never allocated
  exec.spawn("sender", [&](ThreadCtx& ctx) {
    ch.a().send_sized(ctx, to_bytes("descriptor"), kBulk);
  });
  exec.spawn("receiver", [&](ThreadCtx& ctx) {
    Bytes m = ch.b().recv(ctx);
    EXPECT_EQ(to_string(m), "descriptor");
    recv_time = ctx.now();
  });
  ASSERT_TRUE(exec.run());
  const CostModel& cm = default_cost_model();
  EXPECT_GE(recv_time, per_byte_x100(cm.net_ns_per_byte_x100, kBulk));
  EXPECT_EQ(ch.a_to_b().bytes_sent(), kBulk);
}

TEST(Network, BidirectionalTraffic) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  exec.spawn("a", [&](ThreadCtx& ctx) {
    ch.a().send(ctx, to_bytes("ping"));
    EXPECT_EQ(to_string(ch.a().recv(ctx)), "pong");
  });
  exec.spawn("b", [&](ThreadCtx& ctx) {
    EXPECT_EQ(to_string(ch.b().recv(ctx)), "ping");
    ch.b().send(ctx, to_bytes("pong"));
  });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(ch.total_bytes(), 8u);
}

TEST(Network, TapObservesAndCanTamper) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  int observed = 0;
  ch.a_to_b().set_tap([&](Bytes& m) {
    ++observed;
    if (!m.empty()) m[0] ^= 0xff;  // MITM flips a byte
  });
  exec.spawn("a", [&](ThreadCtx& ctx) { ch.a().send(ctx, Bytes{0x01}); });
  Bytes got;
  exec.spawn("b", [&](ThreadCtx& ctx) { got = ch.b().recv(ctx); });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(observed, 1);
  EXPECT_EQ(got[0], 0xfe);
}

TEST(Network, SeveredLinkDropsTrafficSilently) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  ch.a_to_b().sever();
  exec.spawn("a", [&](ThreadCtx& ctx) { ch.a().send(ctx, to_bytes("lost")); });
  bool got_any = false;
  exec.spawn("b", [&](ThreadCtx& ctx) {
    ctx.sleep(10'000'000);
    got_any = ch.b().try_recv(ctx).has_value();
  });
  ASSERT_TRUE(exec.run());
  EXPECT_FALSE(got_any);
  EXPECT_EQ(ch.a_to_b().messages_sent(), 0u);
}

TEST(Network, TryRecvRespectsArrivalTime) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  exec.spawn("a", [&](ThreadCtx& ctx) { ch.a().send(ctx, to_bytes("x")); });
  exec.spawn("b", [&](ThreadCtx& ctx) {
    // At t=0 the message is still in flight.
    EXPECT_FALSE(ch.b().try_recv(ctx).has_value());
    ctx.sleep(default_cost_model().net_latency_ns + 1'000);
    EXPECT_TRUE(ch.b().try_recv(ctx).has_value());
  });
  ASSERT_TRUE(exec.run());
}

}  // namespace
}  // namespace mig::sim
