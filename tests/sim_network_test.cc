// Tests for the simulated network: latency/bandwidth accounting, ordering,
// virtual-sized bulk sends, taps (eavesdropping/tampering), link failure,
// receive deadlines and scripted fault plans.
#include <gtest/gtest.h>

#include "sim/fault.h"
#include "sim/network.h"

namespace mig::sim {
namespace {

TEST(Network, DeliveryChargesLatencyAndBandwidth) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  const CostModel& cm = default_cost_model();
  uint64_t recv_time = 0;
  Bytes payload(10'000, 0xab);
  exec.spawn("sender", [&](ThreadCtx& ctx) {
    ch.a().send(ctx, payload);
  });
  exec.spawn("receiver", [&](ThreadCtx& ctx) {
    Bytes m = ch.b().recv(ctx);
    EXPECT_EQ(m, payload);
    recv_time = ctx.now();
  });
  ASSERT_TRUE(exec.run());
  uint64_t expect = per_byte_x100(cm.net_ns_per_byte_x100, payload.size()) +
                    cm.net_latency_ns;
  EXPECT_GE(recv_time, expect);
  EXPECT_LE(recv_time, expect + 10'000);
}

TEST(Network, MessagesArriveInOrder) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  std::vector<int> received;
  exec.spawn("sender", [&](ThreadCtx& ctx) {
    for (int i = 0; i < 5; ++i) {
      ch.a().send(ctx, Bytes{static_cast<uint8_t>(i)});
      ctx.work(1'000);
    }
  });
  exec.spawn("receiver", [&](ThreadCtx& ctx) {
    for (int i = 0; i < 5; ++i) received.push_back(ch.b().recv(ctx)[0]);
  });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Network, SendSizedChargesVirtualBytesWithoutMaterializing) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  uint64_t recv_time = 0;
  constexpr uint64_t kBulk = 100ull << 20;  // 100 MB, never allocated
  exec.spawn("sender", [&](ThreadCtx& ctx) {
    ch.a().send_sized(ctx, to_bytes("descriptor"), kBulk);
  });
  exec.spawn("receiver", [&](ThreadCtx& ctx) {
    Bytes m = ch.b().recv(ctx);
    EXPECT_EQ(to_string(m), "descriptor");
    recv_time = ctx.now();
  });
  ASSERT_TRUE(exec.run());
  const CostModel& cm = default_cost_model();
  EXPECT_GE(recv_time, per_byte_x100(cm.net_ns_per_byte_x100, kBulk));
  EXPECT_EQ(ch.a_to_b().bytes_sent(), kBulk);
}

TEST(Network, BidirectionalTraffic) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  exec.spawn("a", [&](ThreadCtx& ctx) {
    ch.a().send(ctx, to_bytes("ping"));
    EXPECT_EQ(to_string(ch.a().recv(ctx)), "pong");
  });
  exec.spawn("b", [&](ThreadCtx& ctx) {
    EXPECT_EQ(to_string(ch.b().recv(ctx)), "ping");
    ch.b().send(ctx, to_bytes("pong"));
  });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(ch.total_bytes(), 8u);
}

TEST(Network, TapObservesAndCanTamper) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  int observed = 0;
  ch.a_to_b().set_tap([&](Bytes& m) {
    ++observed;
    if (!m.empty()) m[0] ^= 0xff;  // MITM flips a byte
  });
  exec.spawn("a", [&](ThreadCtx& ctx) { ch.a().send(ctx, Bytes{0x01}); });
  Bytes got;
  exec.spawn("b", [&](ThreadCtx& ctx) { got = ch.b().recv(ctx); });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(observed, 1);
  EXPECT_EQ(got[0], 0xfe);
}

TEST(Network, SeveredLinkDropsTrafficSilently) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  ch.a_to_b().sever();
  exec.spawn("a", [&](ThreadCtx& ctx) { ch.a().send(ctx, to_bytes("lost")); });
  bool got_any = false;
  exec.spawn("b", [&](ThreadCtx& ctx) {
    ctx.sleep(10'000'000);
    got_any = ch.b().try_recv(ctx).has_value();
  });
  ASSERT_TRUE(exec.run());
  EXPECT_FALSE(got_any);
  EXPECT_EQ(ch.a_to_b().messages_sent(), 0u);
}

TEST(Network, TryRecvRespectsArrivalTime) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  exec.spawn("a", [&](ThreadCtx& ctx) { ch.a().send(ctx, to_bytes("x")); });
  exec.spawn("b", [&](ThreadCtx& ctx) {
    // At t=0 the message is still in flight.
    EXPECT_FALSE(ch.b().try_recv(ctx).has_value());
    ctx.sleep(default_cost_model().net_latency_ns + 1'000);
    EXPECT_TRUE(ch.b().try_recv(ctx).has_value());
  });
  ASSERT_TRUE(exec.run());
}

// ---- receive deadlines ------------------------------------------------------

TEST(NetworkDeadline, QuietLinkTimesOutAtExactlyTheDeadline) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  exec.spawn("b", [&](ThreadCtx& ctx) {
    auto m = ch.b().recv_deadline(ctx, 4'000'000);
    EXPECT_FALSE(m.has_value());
    EXPECT_EQ(ctx.now(), 4'000'000u);
    // A relative timeout is the same thing from here.
    m = ch.b().recv_timeout(ctx, 1'000'000);
    EXPECT_FALSE(m.has_value());
    EXPECT_EQ(ctx.now(), 5'000'000u);
  });
  ASSERT_TRUE(exec.run());
}

TEST(NetworkDeadline, MessageStillInFlightAtDeadlineIsNotDelivered) {
  // The message is queued but arrives after the receiver's deadline: the
  // receiver times out first; a later recv still gets the message.
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  Bytes big(1'000'000, 0x55);  // ~30 ms of wire time
  exec.spawn("a", [&](ThreadCtx& ctx) { ch.a().send(ctx, big); });
  exec.spawn("b", [&](ThreadCtx& ctx) {
    auto m = ch.b().recv_deadline(ctx, 1'000'000);  // 1 ms: too early
    EXPECT_FALSE(m.has_value());
    EXPECT_EQ(ctx.now(), 1'000'000u);
    m = ch.b().recv(ctx);  // blocking recv rides out the arrival
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->size(), big.size());
  });
  ASSERT_TRUE(exec.run());
}

TEST(NetworkDeadline, ArrivalBeforeDeadlineDeliversNormally) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  exec.spawn("a", [&](ThreadCtx& ctx) { ch.a().send(ctx, to_bytes("hi")); });
  uint64_t got_at = 0;
  exec.spawn("b", [&](ThreadCtx& ctx) {
    auto m = ch.b().recv_deadline(ctx, 1'000'000'000);
    ASSERT_TRUE(m.has_value());
    got_at = ctx.now();
  });
  ASSERT_TRUE(exec.run());
  EXPECT_LT(got_at, 1'000'000'000u);  // woke on arrival, not at the deadline
}

// ---- fault plans ------------------------------------------------------------

TEST(FaultPlan, DropsExactlyTheScriptedMessage) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  FaultPlan plan;
  plan.drop_message(2);
  plan.install(ch.a_to_b());
  exec.spawn("a", [&](ThreadCtx& ctx) {
    for (uint8_t i = 1; i <= 3; ++i) ch.a().send(ctx, Bytes{i});
  });
  std::vector<uint8_t> got;
  exec.spawn("b", [&](ThreadCtx& ctx) {
    for (int i = 0; i < 2; ++i) got.push_back(ch.b().recv(ctx)[0]);
    EXPECT_FALSE(ch.b().recv_timeout(ctx, 10'000'000).has_value());
  });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(got, (std::vector<uint8_t>{1, 3}));
  EXPECT_EQ(plan.messages_seen(), 3u);
  EXPECT_EQ(plan.faults_fired(), 1u);
}

TEST(FaultPlan, DelayAddsExactExtraLatency) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  FaultPlan plan;
  constexpr uint64_t kExtra = 7'000'000;
  plan.delay_message(1, kExtra);
  plan.install(ch.a_to_b());
  uint64_t got_at = 0;
  exec.spawn("a", [&](ThreadCtx& ctx) { ch.a().send(ctx, Bytes{1}); });
  exec.spawn("b", [&](ThreadCtx& ctx) {
    Bytes m = ch.b().recv(ctx);
    EXPECT_EQ(m.size(), 1u);
    got_at = ctx.now();
  });
  ASSERT_TRUE(exec.run());
  const CostModel& cm = default_cost_model();
  EXPECT_GE(got_at, cm.net_latency_ns + kExtra);
  EXPECT_LT(got_at, cm.net_latency_ns + kExtra + 1'000'000);
}

TEST(FaultPlan, CorruptFlipsOneByteAndTapStillSeesTheOriginalSendOrder) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  int tapped = 0;
  ch.a_to_b().set_tap([&](Bytes&) { ++tapped; });
  FaultPlan plan;
  plan.corrupt_message(1, /*offset=*/1);
  plan.install(ch.a_to_b());
  Bytes got;
  exec.spawn("a", [&](ThreadCtx& ctx) { ch.a().send(ctx, Bytes{9, 9, 9}); });
  exec.spawn("b", [&](ThreadCtx& ctx) { got = ch.b().recv(ctx); });
  ASSERT_TRUE(exec.run());
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 9);
  EXPECT_NE(got[1], 9);  // exactly the scripted byte changed
  EXPECT_EQ(got[2], 9);
  EXPECT_EQ(tapped, 1);
}

TEST(FaultPlan, SeverAtMessageKillsTheLinkAndEverythingAfter) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  FaultPlan plan;
  plan.sever_at_message(2);
  plan.install(ch.a_to_b());
  exec.spawn("a", [&](ThreadCtx& ctx) {
    for (uint8_t i = 1; i <= 4; ++i) ch.a().send(ctx, Bytes{i});
  });
  std::vector<uint8_t> got;
  exec.spawn("b", [&](ThreadCtx& ctx) {
    got.push_back(ch.b().recv(ctx)[0]);
    EXPECT_FALSE(ch.b().recv_timeout(ctx, 50'000'000).has_value());
  });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(got, (std::vector<uint8_t>{1}));
  EXPECT_TRUE(ch.a_to_b().severed());
  EXPECT_EQ(plan.faults_fired(), 1u);  // index rules fire once
  EXPECT_EQ(plan.messages_seen(), 4u);
}

TEST(FaultPlan, PredicateRulesFireOnEveryMatch) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  FaultPlan plan;
  plan.drop_when([](const Bytes& m) { return !m.empty() && m[0] == 0xee; });
  plan.install(ch.a_to_b());
  exec.spawn("a", [&](ThreadCtx& ctx) {
    ch.a().send(ctx, Bytes{0xee});
    ch.a().send(ctx, Bytes{0x01});
    ch.a().send(ctx, Bytes{0xee});
  });
  std::vector<uint8_t> got;
  exec.spawn("b", [&](ThreadCtx& ctx) {
    got.push_back(ch.b().recv(ctx)[0]);
    EXPECT_FALSE(ch.b().recv_timeout(ctx, 10'000'000).has_value());
  });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(got, (std::vector<uint8_t>{0x01}));
  EXPECT_EQ(plan.faults_fired(), 2u);
}

TEST(FaultPlan, TapSeesWhatTheNetworkAte) {
  // The tap models the sender-side NIC: it observes every send attempt,
  // including ones the fault plan then drops — attack recorders must see
  // traffic the receiver never got.
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  int tapped = 0;
  ch.a_to_b().set_tap([&](Bytes&) { ++tapped; });
  FaultPlan plan;
  plan.drop_message(1);
  plan.install(ch.a_to_b());
  exec.spawn("a", [&](ThreadCtx& ctx) { ch.a().send(ctx, Bytes{1}); });
  exec.spawn("b", [&](ThreadCtx& ctx) {
    EXPECT_FALSE(ch.b().recv_timeout(ctx, 10'000'000).has_value());
  });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(tapped, 1);
  EXPECT_EQ(ch.a_to_b().messages_sent(), 0u);  // dropped = never transmitted
  EXPECT_EQ(ch.a_to_b().bytes_sent(), 0u);
}

TEST(FaultPlan, SeveredSendsChargeNoBandwidth) {
  // A huge send into a dead link must not serialize later traffic: after
  // repair, a small message flies at normal latency.
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  ch.a_to_b().sever();
  uint64_t got_at = 0;
  exec.spawn("a", [&](ThreadCtx& ctx) {
    ch.a().send_sized(ctx, to_bytes("huge"), 1ull << 30);  // 1 GB, dropped
    ch.a_to_b().repair();
    ch.a().send(ctx, to_bytes("small"));
  });
  exec.spawn("b", [&](ThreadCtx& ctx) {
    Bytes m = ch.b().recv(ctx);
    EXPECT_EQ(to_string(m), "small");
    got_at = ctx.now();
  });
  ASSERT_TRUE(exec.run());
  EXPECT_EQ(ch.a_to_b().bytes_sent(), 5u);  // only the small one transmitted
  // If the dead 1 GB send had held the link, this would be ~32 s.
  EXPECT_LT(got_at, 10'000'000u);
}

TEST(FaultPlan, OneWayPartitionLeavesReverseDirectionHealthy) {
  Executor exec(2);
  Channel ch(exec, default_cost_model());
  FaultPlan plan;
  plan.sever_at_message(1);
  plan.install(ch.a_to_b());
  exec.spawn("a", [&](ThreadCtx& ctx) {
    ch.a().send(ctx, to_bytes("lost"));
    EXPECT_EQ(to_string(ch.a().recv(ctx)), "back");
  });
  exec.spawn("b", [&](ThreadCtx& ctx) {
    ch.b().send(ctx, to_bytes("back"));  // reverse pipe unaffected
    EXPECT_FALSE(ch.b().recv_timeout(ctx, 10'000'000).has_value());
  });
  ASSERT_TRUE(exec.run());
}

}  // namespace
}  // namespace mig::sim
