#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/check.h"
#include "util/serde.h"
#include "util/status.h"

namespace mig {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(hex_encode(data), "0001abff");
  EXPECT_EQ(hex_decode("0001abff"), data);
  EXPECT_EQ(hex_decode("0001ABFF"), data);
}

TEST(Bytes, HexDecodeRejectsMalformed) {
  EXPECT_TRUE(hex_decode("abc").empty());   // odd length
  EXPECT_TRUE(hex_decode("zz").empty());    // non-hex
}

TEST(Bytes, ToBytesToString) {
  Bytes b = to_bytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(to_string(b), "hello");
}

TEST(Bytes, XorInto) {
  Bytes a = {0xff, 0x0f};
  Bytes b = {0x0f, 0xf0};
  xor_into(a, b);
  EXPECT_EQ(a, (Bytes{0xf0, 0xff}));
}

TEST(Check, FiresOnFalse) {
  EXPECT_THROW(MIG_CHECK(1 == 2), CheckFailure);
  EXPECT_NO_THROW(MIG_CHECK(1 == 1));
}

TEST(Status, OkAndError) {
  Status ok = OkStatus();
  EXPECT_TRUE(ok.ok());
  Status err = Error(ErrorCode::kIntegrityViolation, "bad MAC");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::kIntegrityViolation);
  EXPECT_EQ(err.to_string(), "INTEGRITY_VIOLATION: bad MAC");
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  Result<int> e = Error(ErrorCode::kNotFound, "missing");
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), ErrorCode::kNotFound);
  EXPECT_THROW(e.value(), CheckFailure);
}

TEST(Serde, RoundTripAllTypes) {
  Writer w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789abcde);
  w.u64(0x1122334455667788ULL);
  w.bytes(to_bytes("payload"));
  w.str("name");
  w.raw(Bytes{0xaa, 0xbb});

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0x12);
  EXPECT_EQ(r.u16(), 0x3456);
  EXPECT_EQ(r.u32(), 0x789abcdeu);
  EXPECT_EQ(r.u64(), 0x1122334455667788ULL);
  EXPECT_EQ(to_string(r.bytes()), "payload");
  EXPECT_EQ(r.str(), "name");
  EXPECT_EQ(r.raw(2), (Bytes{0xaa, 0xbb}));
  EXPECT_TRUE(r.finish().ok());
}

TEST(Serde, TruncatedInputSetsStickyFailure) {
  Writer w;
  w.u64(7);
  Bytes data = w.take();
  data.resize(4);  // truncate
  Reader r(data);
  (void)r.u64();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u32(), 0u);  // still safe to call
  EXPECT_FALSE(r.finish().ok());
}

TEST(Serde, HostileLengthPrefixIsRejected) {
  Writer w;
  w.u32(0xffffffffu);  // claims 4 GiB of payload
  Reader r(w.data());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Serde, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 1);
  EXPECT_FALSE(r.finish().ok());
}

}  // namespace
}  // namespace mig
