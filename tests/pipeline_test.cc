// Tests for the pipelined chunked checkpoint data path (wire format v2):
// round-trip state equivalence, determinism of the chunked wire bytes,
// parallel-seal speedup in virtual time, and fault/tamper behavior — a
// stream severed between chunk k and k+1 must leave the target with nothing
// usable and the source intact (self-destroy only ever follows a full key
// handoff).
#include <gtest/gtest.h>

#include "attacks/malicious_os.h"
#include "guestos/guest_os.h"
#include "hv/machine.h"
#include "migration/owner.h"
#include "migration/session.h"
#include "sdk/builder.h"
#include "sdk/chunk_wire.h"
#include "sdk/host.h"
#include "sim/fault.h"
#include "util/serde.h"

namespace mig::migration {
namespace {

using sdk::ControlCmd;

constexpr uint64_t kEcallAdd = 1;
constexpr uint64_t kEcallGet = 2;

std::shared_ptr<sdk::EnclaveProgram> make_counter_program() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("pipe-counter");
  prog->add_ecall(kEcallAdd, "add", [](sdk::EnclaveEnv& env, sdk::Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t delta = r.u64();
    uint64_t off = env.layout().data_off;
    env.work(200);
    env.write_u64(off, env.read_u64(off) + delta);
    return OkStatus();
  });
  prog->add_ecall(kEcallGet, "get", [](sdk::EnclaveEnv& env, sdk::Frame&) {
    Writer w;
    w.u64(env.read_u64(env.layout().data_off));
    env.set_retval(w.take());
    return OkStatus();
  });
  return prog;
}

// Same shape as migration_test.cc's MigrationBed, with a heap-size knob so
// the speedup test can use an enclave big enough for the pipeline to matter.
struct PipelineBed {
  hv::World world;
  hv::Machine* source;
  hv::Machine* target;
  hv::Vm vm;
  guestos::GuestOs guest;
  guestos::Process* process;
  crypto::Drbg rng{to_bytes("pipe-bed")};
  crypto::SigKeyPair dev_signer;
  EnclaveOwner owner;

  PipelineBed()
      : world(4),
        source(&world.add_machine("source")),
        target(&world.add_machine("target")),
        vm(hv::VmConfig{}, hv::DirtyModel{}),
        guest(*source, vm),
        process(&guest.create_process("app")),
        owner(world.ias(), crypto::Drbg(to_bytes("owner"))) {
    crypto::Drbg srng(to_bytes("dev-signer"));
    dev_signer = crypto::sig_keygen(srng);
  }

  std::unique_ptr<sdk::EnclaveHost> make_host(uint64_t heap_pages = 4) {
    sdk::BuildInput in;
    in.program = make_counter_program();
    in.layout.num_workers = 2;
    in.layout.heap_pages = heap_pages;
    sdk::BuildOutput built = sdk::build_enclave_image(
        in, dev_signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    return std::make_unique<sdk::EnclaveHost>(
        guest, *process, std::move(built), world.ias(),
        rng.fork(to_bytes("host")));
  }

  void provision(sim::ThreadCtx& ctx, sdk::EnclaveHost& host) {
    auto channel = world.make_channel();
    world.executor().spawn("owner", [this, ch = channel.get()](
                                        sim::ThreadCtx& c) {
      owner.serve_one(c, ch->b());
    });
    ControlCmd cmd;
    cmd.type = ControlCmd::Type::kProvision;
    cmd.channel = channel->a();
    sdk::ControlReply reply = host.mailbox().post(ctx, cmd);
    ASSERT_TRUE(reply.status.ok()) << reply.status.to_string();
  }

  void run(std::function<void(sim::ThreadCtx&)> fn) {
    world.executor().spawn("test", std::move(fn));
    ASSERT_TRUE(world.executor().run());
  }
};

// ---- round trip ----------------------------------------------------------

TEST(ChunkedCheckpoint, RoundTripRestoresState) {
  PipelineBed bed;
  auto host = bed.make_host();
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    Writer w;
    w.u64(4321);
    ASSERT_TRUE(host->ecall(ctx, 0, kEcallAdd, w.data()).ok());

    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;
    opts.chunk_bytes = 16 * 1024;
    opts.seal_workers = 4;
    auto ckpt = migrator.prepare(ctx, *host, opts);
    ASSERT_TRUE(ckpt.ok()) << ckpt.status().to_string();
    EXPECT_TRUE(sdk::is_chunked_checkpoint(*ckpt));

    auto source_inst = host->detach_instance();
    sgx::EnclaveId source_eid = source_inst->eid;
    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    ASSERT_TRUE(migrator.restore(ctx, *host, *bed.source, source_inst,
                                 std::move(*ckpt), opts)
                    .ok());

    auto got = host->ecall(ctx, 0, kEcallGet, {});
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    Reader rd(*got);
    EXPECT_EQ(rd.u64(), 4321u);
    EXPECT_EQ(host->instance()->machine, bed.target);
    // Self-destroy happened on the source: key handoff completed.
    EXPECT_FALSE(bed.source->hw().enclave_exists(source_eid));
  });
}

// ---- determinism ---------------------------------------------------------

// One full pipelined prepare with the chunk stream tapped; returns the
// assembled v2 blob and every frame the stream carried, in order.
struct WireCapture {
  Bytes blob;
  std::vector<Bytes> frames;
};

WireCapture capture_chunked_wire() {
  PipelineBed bed;
  auto host = bed.make_host(/*heap_pages=*/32);
  WireCapture out;
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    Writer w;
    w.u64(7);
    ASSERT_TRUE(host->ecall(ctx, 0, kEcallAdd, w.data()).ok());

    auto channel = bed.world.make_channel();
    attacks::WireRecorder recorder;
    recorder.attach(channel->a_to_b());
    sim::Event recv_done(bed.world.executor());
    bed.world.executor().spawn("recv", [&, ch = channel.get()](
                                           sim::ThreadCtx& c) {
      auto blob = sdk::receive_chunked_checkpoint(c, ch->b(),
                                                  10'000'000'000ull);
      EXPECT_TRUE(blob.ok()) << blob.status().to_string();
      recv_done.set(c);
    });

    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;
    opts.chunk_bytes = 8 * 1024;
    opts.seal_workers = 3;
    sim::Channel::End a = channel->a();
    opts.chunk_stream = &a;
    auto ckpt = migrator.prepare(ctx, *host, opts);
    ASSERT_TRUE(ckpt.ok()) << ckpt.status().to_string();
    recv_done.wait(ctx);
    out.blob = std::move(*ckpt);
    out.frames = recorder.recorded();
  });
  return out;
}

TEST(ChunkedCheckpoint, DeterministicWireBytes) {
  WireCapture run1 = capture_chunked_wire();
  WireCapture run2 = capture_chunked_wire();

  ASSERT_FALSE(run1.blob.empty());
  ASSERT_TRUE(sdk::is_chunked_checkpoint(run1.blob));
  // Identical seeds => byte-identical assembled blob AND byte-identical
  // stream frames, despite 3 sealing workers racing for chunks.
  EXPECT_EQ(run1.blob, run2.blob);
  ASSERT_EQ(run1.frames.size(), run2.frames.size());
  for (size_t i = 0; i < run1.frames.size(); ++i) {
    EXPECT_EQ(run1.frames[i], run2.frames[i]) << "frame " << i;
  }
  // One CHNK frame per chunk plus the CEND trailer.
  auto parsed = sdk::parse_chunked_checkpoint(run1.blob);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_GE(parsed->header.chunk_count, 2u);
  EXPECT_EQ(run1.frames.size(), parsed->header.chunk_count + 1);
}

// ---- parallel-seal speedup ----------------------------------------------

// The ISSUE acceptance bar, as a regression test: with 4 sealing workers the
// checkpoint (prepare) virtual time must be at most half the serial v1 path
// on the same enclave.
uint64_t prepare_ns(uint64_t chunk_bytes, uint64_t workers) {
  PipelineBed bed;
  auto host = bed.make_host(/*heap_pages=*/256);  // ~1 MB heap
  uint64_t elapsed = 0;
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;
    opts.chunk_bytes = chunk_bytes;
    opts.seal_workers = workers;
    uint64_t t0 = ctx.now();
    auto ckpt = migrator.prepare(ctx, *host, opts);
    ASSERT_TRUE(ckpt.ok()) << ckpt.status().to_string();
    elapsed = ctx.now() - t0;
  });
  return elapsed;
}

TEST(ChunkedCheckpoint, FourWorkersAtMostHalfOfSerial) {
  uint64_t serial = prepare_ns(/*chunk_bytes=*/0, /*workers=*/1);
  uint64_t four = prepare_ns(/*chunk_bytes=*/64 * 1024, /*workers=*/4);
  ASSERT_GT(serial, 0u);
  EXPECT_LE(four * 2, serial)
      << "4-worker pipeline took " << four << " ns vs serial " << serial;
}

// ---- fault between chunk k and k+1 ---------------------------------------

TEST(ChunkedCheckpoint, MidStreamSeverLeavesSourceIntactAndTargetEmpty) {
  PipelineBed bed;
  auto host = bed.make_host(/*heap_pages=*/32);
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    Writer w;
    w.u64(99);
    ASSERT_TRUE(host->ecall(ctx, 0, kEcallAdd, w.data()).ok());

    // The link dies as the 3rd chunk frame is sent: the receiver saw chunks
    // 0 and 1 but will never see the CEND trailer (nor the root).
    auto channel = bed.world.make_channel();
    sim::FaultPlan plan;
    plan.sever_at_message(3);
    plan.install(channel->a_to_b());

    struct Recv {
      sim::Event done;
      Status status = OkStatus();
      explicit Recv(sim::Executor& e) : done(e) {}
    } recv(bed.world.executor());
    bed.world.executor().spawn("recv", [&, ch = channel.get()](
                                           sim::ThreadCtx& c) {
      auto blob =
          sdk::receive_chunked_checkpoint(c, ch->b(), 2'000'000'000ull);
      recv.status = blob.status();
      recv.done.set(c);
    });

    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;
    opts.chunk_bytes = 4 * 1024;
    opts.seal_workers = 2;
    sim::Channel::End a = channel->a();
    opts.chunk_stream = &a;
    // Prepare itself succeeds — the sender never blocks on the dead link.
    auto ckpt = migrator.prepare(ctx, *host, opts);
    ASSERT_TRUE(ckpt.ok()) << ckpt.status().to_string();

    recv.done.wait(ctx);
    // No partial state is ever accepted: the receiver reports the quiet
    // link instead of returning a truncated chunk set.
    EXPECT_FALSE(recv.status.ok());
    EXPECT_EQ(recv.status.code(), ErrorCode::kDeadlineExceeded);
    EXPECT_GE(plan.faults_fired(), 1u);

    // The operator gives up and cancels. The source never served Kmigrate,
    // so it did not self-destroy: it keeps running with its state.
    ControlCmd cancel;
    cancel.type = ControlCmd::Type::kCancelMigration;
    ASSERT_TRUE(host->mailbox().post(ctx, cancel).status.ok());
    host->finish_migration(ctx, {});

    auto got = host->ecall(ctx, 0, kEcallGet, {});
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    Reader rd(*got);
    EXPECT_EQ(rd.u64(), 99u);
    EXPECT_EQ(host->instance()->machine, bed.source);
  });
}

// ---- hostile blob surgery ------------------------------------------------

// Drops the last chunk but keeps the original root: the chunk-set count
// check in root verification must catch it before any state is accepted.
TEST(ChunkedCheckpoint, TruncatedChunkSetRejectedOnRestore) {
  PipelineBed bed;
  auto host = bed.make_host(/*heap_pages=*/32);
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;
    opts.chunk_bytes = 8 * 1024;
    opts.seal_workers = 2;
    auto ckpt = migrator.prepare(ctx, *host, opts);
    ASSERT_TRUE(ckpt.ok()) << ckpt.status().to_string();

    auto parsed = sdk::parse_chunked_checkpoint(*ckpt);
    ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
    ASSERT_GE(parsed->header.chunk_count, 2u);
    sdk::ChunkedHeader h = parsed->header;
    h.chunk_count -= 1;
    std::vector<Bytes> chunks(parsed->sealed_chunks.begin(),
                              parsed->sealed_chunks.end() - 1);
    Bytes truncated = sdk::encode_chunked_checkpoint(h, chunks, parsed->root);

    auto source_inst = host->detach_instance();
    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    Status st = migrator.restore(ctx, *host, *bed.source, source_inst,
                                 std::move(truncated), opts);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::kIntegrityViolation);
  });
}

// Swaps the sealed payloads of chunks 0 and 1 while keeping the indices
// contiguous: each chunk decrypts under the wrong per-chunk key, so its MAC
// fails — per-chunk keys play the nonce role and bind position.
TEST(ChunkedCheckpoint, ReorderedChunksRejectedOnRestore) {
  PipelineBed bed;
  auto host = bed.make_host(/*heap_pages=*/32);
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    EnclaveMigrator migrator(bed.world);
    EnclaveMigrateOptions opts;
    opts.chunk_bytes = 8 * 1024;
    opts.seal_workers = 2;
    auto ckpt = migrator.prepare(ctx, *host, opts);
    ASSERT_TRUE(ckpt.ok()) << ckpt.status().to_string();

    auto parsed = sdk::parse_chunked_checkpoint(*ckpt);
    ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
    ASSERT_GE(parsed->header.chunk_count, 2u);
    std::vector<Bytes> chunks = parsed->sealed_chunks;
    std::swap(chunks[0], chunks[1]);
    Bytes reordered =
        sdk::encode_chunked_checkpoint(parsed->header, chunks, parsed->root);

    auto source_inst = host->detach_instance();
    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    Status st = migrator.restore(ctx, *host, *bed.source, source_inst,
                                 std::move(reordered), opts);
    EXPECT_FALSE(st.ok());
  });
}

// ---- owner snapshots over the chunked path -------------------------------

TEST(ChunkedCheckpoint, OwnerSnapshotRoundTripsChunked) {
  PipelineBed bed;
  auto host = bed.make_host(/*heap_pages=*/32);
  bed.run([&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    bed.provision(ctx, *host);
    Writer w;
    w.u64(50);
    ASSERT_TRUE(host->ecall(ctx, 0, kEcallAdd, w.data()).ok());

    auto ch1 = bed.world.make_channel();
    bed.world.executor().spawn("owner1", [&, ch = ch1.get()](
                                             sim::ThreadCtx& c) {
      bed.owner.serve_one(c, ch->b());
    });
    ControlCmd ckpt;
    ckpt.type = ControlCmd::Type::kOwnerCheckpoint;
    ckpt.channel = ch1->a();
    ckpt.chunk_bytes = 4 * 1024;
    ckpt.seal_workers = 2;
    sdk::ControlReply snap = host->mailbox().post(ctx, ckpt);
    ASSERT_TRUE(snap.status.ok()) << snap.status.to_string();
    EXPECT_TRUE(sdk::is_chunked_checkpoint(snap.blob));
    host->finish_migration(ctx, {});  // release the quiesced workers

    // Mutate, then roll back to the snapshot via the owner.
    ASSERT_TRUE(host->ecall(ctx, 0, kEcallAdd, w.data()).ok());
    auto ch2 = bed.world.make_channel();
    bed.world.executor().spawn("owner2", [&, ch = ch2.get()](
                                             sim::ThreadCtx& c) {
      bed.owner.serve_one(c, ch->b());
    });
    ControlCmd restore;
    restore.type = ControlCmd::Type::kOwnerRestore;
    restore.channel = ch2->a();
    restore.blob = snap.blob;
    sdk::ControlReply r = host->mailbox().post(ctx, restore);
    ASSERT_TRUE(r.status.ok()) << r.status.to_string();
    for (const sdk::PumpPlan& p : r.pumps)
      ASSERT_TRUE(host->pump_cssa(ctx, p.worker_idx, p.pumps).ok());
    ControlCmd finish;
    finish.type = ControlCmd::Type::kFinishRestore;
    ASSERT_TRUE(host->mailbox().post(ctx, finish).status.ok());
    host->finish_migration(ctx, r.pumps);

    auto got = host->ecall(ctx, 0, kEcallGet, {});
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    Reader rd(*got);
    EXPECT_EQ(rd.u64(), 50u);
  });
}

}  // namespace
}  // namespace mig::migration
