// Additional SGX-model edge cases: build-time validation, paging corner
// cases, attestation misuse, and extension-instruction lifecycle errors.
#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "sgx/attestation.h"
#include "sgx/hardware.h"
#include "sgx/image.h"
#include "util/serde.h"

namespace mig::sgx {
namespace {

using crypto::Drbg;
constexpr uint64_t kBase = 0x10000000;

struct EdgeBed {
  sim::Executor exec{2};
  SgxHardware hw{exec, sim::default_cost_model(), Drbg(to_bytes("seed")),
                 HardwareConfig{.machine_name = "m", .epc_pages = 64,
                                .migration_ext = true}};
  void run(std::function<void(sim::ThreadCtx&)> fn) {
    exec.spawn("t", std::move(fn));
    ASSERT_TRUE(exec.run());
  }
};

TEST(SgxEdge, EcreateValidatesAlignmentAndSize) {
  EdgeBed bed;
  bed.run([&](sim::ThreadCtx& ctx) {
    EXPECT_FALSE(bed.hw.ecreate(ctx, kBase + 1, kPageSize, 1, 1).ok());
    EXPECT_FALSE(bed.hw.ecreate(ctx, kBase, 100, 1, 1).ok());
    EXPECT_FALSE(bed.hw.ecreate(ctx, kBase, 0, 1, 1).ok());
    EXPECT_TRUE(bed.hw.ecreate(ctx, kBase, kPageSize, 1, 1).ok());
  });
}

TEST(SgxEdge, EaddValidatesRangeTypeAndDuplicates) {
  EdgeBed bed;
  bed.run([&](sim::ThreadCtx& ctx) {
    auto eid = *bed.hw.ecreate(ctx, kBase, 2 * kPageSize, 1, 1);
    EXPECT_FALSE(bed.hw.eadd(ctx, eid, kBase - kPageSize, PageType::kReg,
                             Perms::rw(), {}).ok());
    EXPECT_FALSE(bed.hw.eadd(ctx, eid, kBase + 2 * kPageSize, PageType::kReg,
                             Perms::rw(), {}).ok());
    EXPECT_FALSE(bed.hw.eadd(ctx, eid, kBase, PageType::kVa,
                             Perms::rw(), {}).ok());
    EXPECT_TRUE(bed.hw.eadd(ctx, eid, kBase, PageType::kReg, Perms::rw(),
                            {}).ok());
    EXPECT_EQ(bed.hw.eadd(ctx, eid, kBase, PageType::kReg, Perms::rw(), {})
                  .code(),
              ErrorCode::kFailedPrecondition);  // duplicate
    // Malformed TCS content.
    EXPECT_FALSE(bed.hw.eadd(ctx, eid, kBase + kPageSize, PageType::kTcs,
                             Perms{}, to_bytes("xx")).ok());
  });
}

TEST(SgxEdge, EnterUninitializedEnclaveFails) {
  EdgeBed bed;
  bed.run([&](sim::ThreadCtx& ctx) {
    auto eid = *bed.hw.ecreate(ctx, kBase, 2 * kPageSize, 1, 1);
    Writer tcs;
    tcs.u64(0);
    tcs.u64(kPageSize);
    tcs.u64(2);
    ASSERT_TRUE(bed.hw.eadd(ctx, eid, kBase, PageType::kTcs, Perms{},
                            tcs.data()).ok());
    CoreState core;
    EXPECT_EQ(bed.hw.eenter(ctx, core, eid, kBase).status().code(),
              ErrorCode::kFailedPrecondition);
    // EENTER at a non-TCS address also fails post-init — checked elsewhere;
    // here: nonexistent enclave.
    EXPECT_FALSE(bed.hw.eenter(ctx, core, 999, kBase).ok());
  });
}

TEST(SgxEdge, VaSlotLifecycle) {
  EdgeBed bed;
  bed.run([&](sim::ThreadCtx& ctx) {
    // Build a minimal measured enclave via the image helper.
    crypto::Drbg srng(to_bytes("dev"));
    crypto::SigKeyPair signer = crypto::sig_keygen(srng);
    EnclaveImage img;
    img.base = kBase;
    img.size = 2 * kPageSize;
    img.isv_prod_id = 1;
    img.isv_svn = 1;
    img.pages.push_back(
        ImagePage{0, PageType::kReg, Perms::rw(), Bytes(8, 0x11)});
    crypto::Drbg rng2(to_bytes("r"));
    img.sign(signer, rng2);
    auto eid = bed.hw.ecreate(ctx, img.base, img.size, 1, 1);
    ASSERT_TRUE(eid.ok());
    ASSERT_TRUE(bed.hw.eadd(ctx, *eid, kBase, PageType::kReg, Perms::rw(),
                            img.pages[0].content).ok());
    ASSERT_TRUE(bed.hw.eextend(ctx, *eid, kBase).ok());
    ASSERT_TRUE(bed.hw.einit(ctx, *eid, img.sigstruct).ok());

    uint64_t va = *bed.hw.epa(ctx);
    // Bad slot indices.
    EXPECT_FALSE(bed.hw.ewb(ctx, *eid, kBase, va, -1).ok());
    EXPECT_FALSE(bed.hw.ewb(ctx, *eid, kBase, va, kVaSlotsPerPage).ok());
    EXPECT_FALSE(bed.hw.ewb(ctx, *eid, kBase, va + 7, 0).ok());  // no such VA
    auto ev = bed.hw.ewb(ctx, *eid, kBase, va, 3);
    ASSERT_TRUE(ev.ok());
    // Occupied slot refuses a second EWB... need another resident page; the
    // enclave only had one, so re-load and re-evict into the same slot.
    ASSERT_TRUE(bed.hw.eldb(ctx, *ev).ok());
    auto ev2 = bed.hw.ewb(ctx, *eid, kBase, va, 3);
    ASSERT_TRUE(ev2.ok());  // slot was consumed by ELDB, usable again
    // EWB of a non-resident page fails.
    EXPECT_FALSE(bed.hw.ewb(ctx, *eid, kBase, va, 4).ok());
    // ELDB after the enclave is gone fails.
    ASSERT_TRUE(bed.hw.eremove_enclave(ctx, *eid).ok());
    EXPECT_FALSE(bed.hw.eldb(ctx, *ev2).ok());
  });
}

TEST(SgxEdge, ReportMacDoesNotVerifyOnAnotherMachine) {
  // Local attestation is machine-local: a report produced on machine A is
  // garbage to machine B's quoting enclave.
  sim::Executor exec(2);
  SgxHardware hw_a(exec, sim::default_cost_model(), Drbg(to_bytes("a")),
                   HardwareConfig{.machine_name = "a", .epc_pages = 64});
  SgxHardware hw_b(exec, sim::default_cost_model(), Drbg(to_bytes("b")),
                   HardwareConfig{.machine_name = "b", .epc_pages = 64});
  QuotingEnclave qe_b(hw_b, Drbg(to_bytes("qb")));
  exec.spawn("t", [&](sim::ThreadCtx& ctx) {
    crypto::Drbg srng(to_bytes("dev"));
    crypto::SigKeyPair signer = crypto::sig_keygen(srng);
    EnclaveImage img;
    img.base = kBase;
    img.size = 2 * kPageSize;
    img.isv_prod_id = 1;
    img.isv_svn = 1;
    Writer tcs;
    tcs.u64(0);
    tcs.u64(kPageSize);
    tcs.u64(2);
    img.pages.push_back(ImagePage{0, PageType::kTcs, Perms{}, tcs.take()});
    img.pages.push_back(ImagePage{kPageSize, PageType::kReg, Perms::rw(), {}});
    crypto::Drbg rng2(to_bytes("r"));
    img.sign(signer, rng2);
    auto eid = hw_a.ecreate(ctx, img.base, img.size, 1, 1);
    ASSERT_TRUE(eid.ok());
    for (const ImagePage& p : img.pages) {
      ASSERT_TRUE(hw_a.eadd(ctx, *eid, img.base + p.offset, p.type, p.perms,
                            p.content).ok());
      ASSERT_TRUE(hw_a.eextend(ctx, *eid, img.base + p.offset).ok());
    }
    ASSERT_TRUE(hw_a.einit(ctx, *eid, img.sigstruct).ok());
    CoreState core;
    ASSERT_TRUE(hw_a.eenter(ctx, core, *eid, kBase).ok());
    auto rep = hw_a.ereport(ctx, core, qe_b.target_info(), to_bytes("x"));
    ASSERT_TRUE(rep.ok());
    ASSERT_TRUE(hw_a.eexit(ctx, core).ok());
    // Machine B's QE cannot verify machine A's report (different roots).
    EXPECT_FALSE(qe_b.quote(ctx, *rep).ok());
  });
  ASSERT_TRUE(exec.run());
}

TEST(SgxEdge, ExtensionLifecycleErrors) {
  EdgeBed bed;
  bed.run([&](sim::ThreadCtx& ctx) {
    Bytes k = Drbg(to_bytes("k")).generate(32);
    // ESWPOUT/EMIGRATEDONE before EMIGRATE / EPUTKEY.
    EXPECT_FALSE(bed.hw.emigrate(ctx, 1).ok());  // no key, no enclave
    ASSERT_TRUE(bed.hw.eputkey(ctx, k, k).ok());
    EXPECT_FALSE(bed.hw.eswpout(ctx, 1, kBase).ok());
    crypto::Digest d{};
    EXPECT_FALSE(bed.hw.emigratedone(ctx, 1, d, 0).ok());
    EXPECT_FALSE(bed.hw.eputkey(ctx, Bytes(4, 0), k).ok());  // bad key size
    // Import with a tampered SECS blob.
    SgxHardware::MigratedSecs secs;
    secs.ciphertext = Bytes(64, 0);
    secs.mac = crypto::Digest{};
    EXPECT_EQ(bed.hw.emigrate_import_secs(ctx, secs).status().code(),
              ErrorCode::kIntegrityViolation);
  });
}

}  // namespace
}  // namespace mig::sgx
