// Guest-OS layer tests: enclave lifecycle through the driver, the
// migration-time enclave-creation freeze, honest thread stopping, and the
// SDK layout invariants the driver builds from.
#include <gtest/gtest.h>

#include "guestos/guest_os.h"
#include "hv/machine.h"
#include "migration/owner.h"
#include "sdk/builder.h"
#include "sdk/host.h"
#include "util/serde.h"

namespace mig::guestos {
namespace {

std::shared_ptr<sdk::EnclaveProgram> tiny_prog() {
  auto prog = std::make_shared<sdk::EnclaveProgram>("tiny");
  prog->add_ecall(1, "noop", [](sdk::EnclaveEnv& env, sdk::Frame&) {
    env.work(100);
    return OkStatus();
  });
  return prog;
}

struct OsBed {
  hv::World world{4};
  hv::Machine* machine = &world.add_machine("m0");
  hv::Vm vm{hv::VmConfig{}, hv::DirtyModel{}};
  GuestOs guest{*machine, vm};
  Process* proc = &guest.create_process("p");
  crypto::Drbg rng{to_bytes("os-bed")};
  crypto::SigKeyPair signer = [] {
    crypto::Drbg r(to_bytes("dev"));
    return crypto::sig_keygen(r);
  }();

  sdk::BuildOutput build() {
    sdk::BuildInput in;
    in.program = tiny_prog();
    return sdk::build_enclave_image(in, signer, world.ias().service_pk(), rng);
  }
};

TEST(GuestOsTest, CreateDestroyEnclaveTracksCounts) {
  OsBed bed;
  bed.world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
    sdk::BuildOutput built = bed.build();
    auto eid = bed.guest.create_enclave(ctx, *bed.proc, built.image);
    ASSERT_TRUE(eid.ok());
    EXPECT_EQ(bed.guest.enclave_count(), 1u);
    EXPECT_TRUE(bed.machine->hw().enclave_exists(*eid));
    ASSERT_TRUE(bed.guest.destroy_enclave(ctx, *bed.proc, *eid).ok());
    EXPECT_EQ(bed.guest.enclave_count(), 0u);
    EXPECT_FALSE(bed.machine->hw().enclave_exists(*eid));
  });
  ASSERT_TRUE(bed.world.executor().run());
}

TEST(GuestOsTest, EnclaveCreationRefusedDuringMigration) {
  OsBed bed;
  bed.proc->register_migration_handlers(
      [](sim::ThreadCtx&) -> Result<uint64_t> { return uint64_t{0}; },
      [](sim::ThreadCtx&) { return OkStatus(); });
  bed.proc->enclave_count = 1;  // pretend: handlers registered => has enclaves
  bed.world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
    auto prep = bed.guest.prepare_enclaves_for_migration(ctx);
    ASSERT_TRUE(prep.ok());
    EXPECT_TRUE(bed.guest.migration_in_progress());
    sdk::BuildOutput built = bed.build();
    auto eid = bed.guest.create_enclave(ctx, *bed.proc, built.image);
    EXPECT_FALSE(eid.ok());
    EXPECT_EQ(eid.status().code(), ErrorCode::kUnavailable);
    // After "arrival", creation works again.
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    EXPECT_FALSE(bed.guest.migration_in_progress());
    EXPECT_TRUE(bed.guest.create_enclave(ctx, *bed.proc, built.image).ok());
  });
  ASSERT_TRUE(bed.world.executor().run());
}

TEST(GuestOsTest, HonestStopOtherThreadsActuallyParksThem) {
  OsBed bed;
  std::atomic<int> progress{0};
  sim::ThreadId worker = sim::kInvalidThread;
  bed.world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
    worker = bed.proc->spawn_thread(
        "spinny",
        [&](sim::ThreadCtx& wctx) {
          for (int i = 0; i < 1000; ++i) {
            wctx.work(100'000);
            ++progress;
          }
        },
        /*daemon=*/true);
    ctx.sleep(500'000);
    ASSERT_TRUE(bed.guest.stop_other_threads(ctx, *bed.proc, ctx.id()).ok());
    // Let it take effect (suspension lands at the next scheduling point).
    ctx.sleep(1'000'000);
    int frozen_at = progress.load();
    ctx.sleep(20'000'000);
    EXPECT_EQ(progress.load(), frozen_at) << "worker ran while stopped";
    bed.guest.resume_other_threads(ctx, *bed.proc, ctx.id());
    ctx.sleep(5'000'000);
    EXPECT_GT(progress.load(), frozen_at) << "worker did not resume";
  });
  ASSERT_TRUE(bed.world.executor().run());
}

TEST(GuestOsTest, PrepareWithoutEnclaveProcessesIsCheap) {
  OsBed bed;
  uint64_t elapsed = 0;
  bed.world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
    uint64_t t0 = ctx.now();
    auto r = bed.guest.prepare_enclaves_for_migration(ctx);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, 0u);
    elapsed = ctx.now() - t0;
  });
  ASSERT_TRUE(bed.world.executor().run());
  EXPECT_LT(elapsed, 100'000u);  // just the upcall + hypercall
}

// ---- layout invariants ---------------------------------------------------------

TEST(Layout, RegionsAreDisjointAndOrdered) {
  for (uint64_t workers : {1u, 2u, 4u, 8u}) {
    sdk::LayoutParams p;
    p.num_workers = workers;
    p.heap_pages = 7;
    p.data_pages = 3;
    sdk::Layout l = sdk::Layout::compute(p);
    EXPECT_EQ(l.num_tcs, workers + 1);  // + control thread
    EXPECT_LT(l.meta_off, l.config_off);
    EXPECT_LT(l.config_off, l.tcs_off);
    EXPECT_LT(l.tcs_off, l.ssa_off);
    EXPECT_LT(l.ssa_off, l.tls_off);
    EXPECT_LT(l.tls_off, l.code_off);
    EXPECT_LT(l.code_off, l.data_off);
    EXPECT_LT(l.data_off, l.heap_off);
    // The track region (per-page write-version counters) sits after the heap
    // and closes the enclave; it must hold one u64 per page below it.
    EXPECT_EQ(l.heap_off + p.heap_pages * sgx::kPageSize, l.track_off);
    EXPECT_EQ(l.track_off + l.track_pages * sgx::kPageSize, l.size);
    EXPECT_GE(l.track_pages * sgx::kPageSize, l.tracked_pages() * 8);
    EXPECT_EQ(l.tracked_pages(), l.track_off / sgx::kPageSize);
    // SSA region exactly nssa frames per TCS.
    EXPECT_EQ(l.tls_off - l.ssa_off, l.num_tcs * sdk::kNssa * sgx::kPageSize);
    // Per-thread offsets stay in their own pages.
    for (uint64_t i = 0; i < l.num_tcs; ++i) {
      EXPECT_EQ(l.tls_offset(i) % sgx::kPageSize, 0u);
      EXPECT_LT(sdk::kTlArgs + sdk::kTlArgsMax, sgx::kPageSize);
    }
  }
}

TEST(Layout, ImageCoversEveryPageExactlyOnce) {
  OsBed bed;
  sdk::BuildOutput built = bed.build();
  std::set<uint64_t> offsets;
  for (const sgx::ImagePage& page : built.image.pages) {
    EXPECT_EQ(page.offset % sgx::kPageSize, 0u);
    EXPECT_TRUE(offsets.insert(page.offset).second)
        << "duplicate page at " << page.offset;
  }
  EXPECT_EQ(offsets.size(), built.layout.total_pages());
  EXPECT_EQ(*offsets.rbegin(), built.layout.size - sgx::kPageSize);
}

// ---- owner service ---------------------------------------------------------------

TEST(Owner, KencryptStablePerEnclaveAndDistinctAcrossEnclaves) {
  hv::World world(1);
  migration::EnclaveOwner owner(world.ias(), crypto::Drbg(to_bytes("o")));
  crypto::Digest a = crypto::Sha256::hash(to_bytes("enclave-a"));
  crypto::Digest b = crypto::Sha256::hash(to_bytes("enclave-b"));
  owner.enroll(a, {});
  owner.enroll(b, {});
  EXPECT_EQ(owner.kencrypt_for(a), owner.kencrypt_for(a));
  EXPECT_NE(owner.kencrypt_for(a), owner.kencrypt_for(b));
  EXPECT_TRUE(owner.kencrypt_for(crypto::Digest{}).empty());
}

}  // namespace
}  // namespace mig::guestos
