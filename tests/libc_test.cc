// Tests for the simplified in-enclave libc: the free-list allocator (state
// entirely inside the enclave heap, so it migrates) and ocall forwarding.
#include <gtest/gtest.h>

#include "guestos/guest_os.h"
#include "hv/machine.h"
#include "migration/owner.h"
#include "migration/session.h"
#include "sdk/builder.h"
#include "sdk/enclave_libc.h"
#include "sdk/host.h"
#include "util/serde.h"

namespace mig::sdk {
namespace {

// Ecall ids for the allocator-exercising program.
constexpr uint64_t kMalloc = 1;   // args u64 bytes -> retval u64 ptr
constexpr uint64_t kFree = 2;     // args u64 ptr
constexpr uint64_t kStats = 3;    // -> u64 free_bytes, u64 blocks
constexpr uint64_t kWrite = 4;    // args u64 ptr, u64 value
constexpr uint64_t kRead = 5;     // args u64 ptr -> u64 value
constexpr uint64_t kLog = 6;      // ocall round trip: echo args via host

std::shared_ptr<EnclaveProgram> libc_prog() {
  auto prog = std::make_shared<EnclaveProgram>("libc-user");
  prog->add_ecall(kMalloc, "malloc", [](EnclaveEnv& env, Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    EnclaveAllocator alloc(env);
    auto ptr = alloc.malloc(r.u64());
    MIG_RETURN_IF_ERROR(ptr.status());
    Writer w;
    w.u64(*ptr);
    env.set_retval(w.take());
    return OkStatus();
  });
  prog->add_ecall(kFree, "free", [](EnclaveEnv& env, Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    return EnclaveAllocator(env).free(r.u64());
  });
  prog->add_ecall(kStats, "stats", [](EnclaveEnv& env, Frame&) {
    EnclaveAllocator alloc(env);
    Writer w;
    w.u64(alloc.free_bytes());
    w.u64(alloc.block_count());
    env.set_retval(w.take());
    return OkStatus();
  });
  prog->add_ecall(kWrite, "write", [](EnclaveEnv& env, Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    uint64_t ptr = r.u64();
    env.write_u64(ptr, r.u64());
    return OkStatus();
  });
  prog->add_ecall(kRead, "read", [](EnclaveEnv& env, Frame& f) {
    Bytes args = f.args();
    Reader r(args);
    Writer w;
    w.u64(env.read_u64(r.u64()));
    env.set_retval(w.take());
    return OkStatus();
  });
  prog->add_ecall(kLog, "log", [](EnclaveEnv& env, Frame& f) {
    // "write() forwarded to the outside SGX library" (§VI-C).
    auto echoed = env.ocall(1, f.args());
    MIG_RETURN_IF_ERROR(echoed.status());
    env.set_retval(std::move(*echoed));
    return OkStatus();
  });
  return prog;
}

struct LibcBed {
  hv::World world{4};
  hv::Machine* machine = &world.add_machine("m0");
  hv::Machine* target = &world.add_machine("m1");
  hv::Vm vm{hv::VmConfig{}, hv::DirtyModel{}};
  guestos::GuestOs guest{*machine, vm};
  guestos::Process* proc = &guest.create_process("p");
  crypto::Drbg rng{to_bytes("libc")};
  crypto::SigKeyPair signer = [] {
    crypto::Drbg r(to_bytes("dev"));
    return crypto::sig_keygen(r);
  }();
  migration::EnclaveOwner owner{world.ias(), crypto::Drbg(to_bytes("own"))};

  std::unique_ptr<EnclaveHost> make_host() {
    BuildInput in;
    in.program = libc_prog();
    in.layout.heap_pages = 4;
    BuildOutput built =
        build_enclave_image(in, signer, world.ias().service_pk(), rng);
    owner.enroll(built.image.measure(), built.owner);
    return std::make_unique<EnclaveHost>(guest, *proc, std::move(built),
                                         world.ias(), rng.fork(to_bytes("h")));
  }
};

uint64_t call_u64(sim::ThreadCtx& ctx, EnclaveHost& host, uint64_t id,
                  std::initializer_list<uint64_t> args) {
  Writer w;
  for (uint64_t a : args) w.u64(a);
  auto r = host.ecall(ctx, 0, id, w.data());
  MIG_CHECK_MSG(r.ok(), r.status().to_string());
  if (r->empty()) return 0;
  Reader rd(*r);
  return rd.u64();
}

TEST(EnclaveLibc, MallocFreeSplitAndCoalesce) {
  LibcBed bed;
  auto host = bed.make_host();
  bed.world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    uint64_t initial_free = call_u64(ctx, *host, kStats, {});
    uint64_t a = call_u64(ctx, *host, kMalloc, {100});
    uint64_t b = call_u64(ctx, *host, kMalloc, {200});
    uint64_t c = call_u64(ctx, *host, kMalloc, {300});
    EXPECT_NE(a, 0u);
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
    // Free the middle one; a new 150-byte allocation reuses its hole.
    call_u64(ctx, *host, kFree, {b});
    uint64_t d = call_u64(ctx, *host, kMalloc, {150});
    EXPECT_EQ(d, b);
    // Free everything; coalescing restores one big free block.
    call_u64(ctx, *host, kFree, {d});
    call_u64(ctx, *host, kFree, {c});
    call_u64(ctx, *host, kFree, {a});
    // Repeated free/malloc cycles converge back to the initial free space
    // (full coalescing happens via forward merges on reuse).
    uint64_t big = call_u64(ctx, *host, kMalloc, {initial_free / 2});
    EXPECT_NE(big, 0u);
    call_u64(ctx, *host, kFree, {big});
  });
  ASSERT_TRUE(bed.world.executor().run());
}

TEST(EnclaveLibc, DoubleFreeAndWildFreeRejected) {
  LibcBed bed;
  auto host = bed.make_host();
  bed.world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    uint64_t a = call_u64(ctx, *host, kMalloc, {64});
    Writer w;
    w.u64(a);
    ASSERT_TRUE(host->ecall(ctx, 0, kFree, w.data()).ok());
    auto again = host->ecall(ctx, 0, kFree, w.data());
    EXPECT_FALSE(again.ok());
    EXPECT_EQ(again.status().code(), ErrorCode::kFailedPrecondition);
    Writer wild;
    wild.u64(123);
    EXPECT_FALSE(host->ecall(ctx, 0, kFree, wild.data()).ok());
  });
  ASSERT_TRUE(bed.world.executor().run());
}

TEST(EnclaveLibc, ExhaustionReportedNotCorrupted) {
  LibcBed bed;
  auto host = bed.make_host();
  bed.world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    Writer w;
    w.u64(1ull << 30);  // absurd
    auto r = host->ecall(ctx, 0, kMalloc, w.data());
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kResourceExhausted);
    // Heap still usable.
    EXPECT_NE(call_u64(ctx, *host, kMalloc, {64}), 0u);
  });
  ASSERT_TRUE(bed.world.executor().run());
}

TEST(EnclaveLibc, AllocatorStateMigrates) {
  LibcBed bed;
  auto host = bed.make_host();
  bed.world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    auto ch = bed.world.make_channel();
    bed.world.executor().spawn("owner", [&, c = ch.get()](sim::ThreadCtx& t) {
      bed.owner.serve_one(t, c->b());
    });
    ControlCmd prov;
    prov.type = ControlCmd::Type::kProvision;
    prov.channel = ch->a();
    ASSERT_TRUE(host->mailbox().post(ctx, prov).status.ok());

    uint64_t ptr = call_u64(ctx, *host, kMalloc, {128});
    call_u64(ctx, *host, kWrite, {ptr, 0x5109});

    migration::EnclaveMigrator migrator(bed.world);
    auto blob = migrator.prepare(ctx, *host, {});
    ASSERT_TRUE(blob.ok());
    auto inst = host->detach_instance();
    bed.guest.set_migration_target(*bed.target);
    ASSERT_TRUE(bed.guest.resume_enclaves_after_migration(ctx).ok());
    ASSERT_TRUE(migrator.restore(ctx, *host, *bed.machine, inst,
                                 std::move(*blob), {}).ok());

    // The allocation (and the allocator's free list) survived: the value is
    // there, freeing works, and a fresh malloc does not clobber it.
    EXPECT_EQ(call_u64(ctx, *host, kRead, {ptr}), 0x5109u);
    uint64_t other = call_u64(ctx, *host, kMalloc, {64});
    EXPECT_NE(other, ptr);
    call_u64(ctx, *host, kFree, {ptr});
    call_u64(ctx, *host, kFree, {other});
  });
  ASSERT_TRUE(bed.world.executor().run());
}

TEST(EnclaveLibc, OcallRoundTripChargesCrossings) {
  LibcBed bed;
  auto host = bed.make_host();
  int host_calls = 0;
  host->register_ocall(1, [&](sim::ThreadCtx& ctx,
                              ByteSpan args) -> Result<Bytes> {
    ctx.work(sim::default_cost_model().syscall_ns);
    ++host_calls;
    Bytes out(args.begin(), args.end());
    std::reverse(out.begin(), out.end());
    return out;
  });
  bed.world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    uint64_t t0 = ctx.now();
    auto r = host->ecall(ctx, 0, kLog, to_bytes("abc"));
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_EQ(to_string(*r), "cba");
    // At least EENTER+EEXIT (ecall) + EEXIT+syscall+EENTER (ocall).
    const sim::CostModel& cm = sim::default_cost_model();
    EXPECT_GE(ctx.now() - t0,
              2 * (cm.eenter_ns + cm.eexit_ns) + cm.syscall_ns);
  });
  ASSERT_TRUE(bed.world.executor().run());
  EXPECT_EQ(host_calls, 1);
}

TEST(EnclaveLibc, UnregisteredOcallFailsCleanly) {
  LibcBed bed;
  auto host = bed.make_host();
  bed.world.executor().spawn("t", [&](sim::ThreadCtx& ctx) {
    ASSERT_TRUE(host->create(ctx).ok());
    auto r = host->ecall(ctx, 0, kLog, to_bytes("x"));
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  });
  ASSERT_TRUE(bed.world.executor().run());
}

}  // namespace
}  // namespace mig::sdk
